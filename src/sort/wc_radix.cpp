// Cache-blocked planned-digit radix engine (see wc_radix.hpp for the
// design rationale). Layout of this file:
//
//   1. key/bit helpers and digit planning,
//   2. the scatter kernels (fused-count, run-aware final, global split
//      with the gated write-combining/NT path),
//   3. the flat LSD loop and the recursive cache-blocking core,
//   4. the public entry points (sort, fused accumulate, pair variant).
//
// Tuning notes from the machine this was calibrated on (single core,
// 48 KB L1d / 2 MB L2 / 260 MB LLC): straight scatter beats NT staging
// for anything LLC-resident, which is why kWcNtBytes gates the WC path
// instead of it being the default; 12-bit digits are the widest whose
// three u32 tables (histogram, next-histogram, offsets) still fit L1
// beside the stream buffers; and the fused next-digit count is measured
// ~free inside a scatter pass, while the same count folded into a
// run-detecting loop de-pipelines it — hence two separate kernels.
#include "sort/wc_radix.hpp"

#include <algorithm>
#include <array>
#include <cstring>
#include <type_traits>

#include "util/thread_pool.hpp"

#if defined(__SSE2__)
#include <emmintrin.h>
#endif

namespace dakc::sort {

namespace detail {

std::uint8_t* wc_scratch(std::size_t bytes) {
  thread_local std::vector<std::uint8_t> slab;
  if (slab.size() < bytes) slab.resize(bytes);
  return slab.data();
}

std::size_t& wc_nt_threshold() {
  thread_local std::size_t bytes = kWcNtBytes;
  return bytes;
}

std::uint64_t diff_mask_u64(const std::uint64_t* p, std::size_t n) {
  std::uint64_t o0 = p[0], a0 = p[0];
  std::uint64_t o1 = p[0], a1 = p[0];
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    o0 |= p[i] | p[i + 1];
    a0 &= p[i] & p[i + 1];
    o1 |= p[i + 2] | p[i + 3];
    a1 &= p[i + 2] & p[i + 3];
  }
  for (; i < n; ++i) {
    o0 |= p[i];
    a0 &= p[i];
  }
  return (o0 | o1) ^ (a0 & a1);
}

}  // namespace detail

namespace {

constexpr int kMaxDigitBits = 12;   // 3 u32 tables of 2^12 fit L1
constexpr int kMaxSplitBits = 8;    // ≤ 256 blocks per split level
constexpr int kMaxSplitDepth = 2;   // skewed data degrades to flat LSD
constexpr std::uint32_t kMaxSlots = 1u << kMaxDigitBits;

/// Digit width by input size: wide digits amortize passes on big arrays;
/// small arrays can't amortize the 2^w-slot prefix sums.
int digit_bits_for(std::size_t n) {
  if (n >= (std::size_t{1} << 15)) return 12;
  if (n >= (std::size_t{1} << 12)) return 11;
  return 8;
}

inline std::uint64_t key_of(std::uint64_t e) { return e; }
template <typename W>
inline W key_of(const kmer::KmerCount<W>& e) {
  return e.kmer;
}

inline int top_bit(std::uint64_t m) { return 63 - __builtin_clzll(m); }
inline int low_bit(std::uint64_t m) { return __builtin_ctzll(m); }
#ifdef __SIZEOF_INT128__
inline int top_bit(unsigned __int128 m) {
  const auto hi = static_cast<std::uint64_t>(m >> 64);
  return hi ? 64 + top_bit(hi) : top_bit(static_cast<std::uint64_t>(m));
}
inline int low_bit(unsigned __int128 m) {
  const auto lo = static_cast<std::uint64_t>(m);
  return lo ? low_bit(lo) : 64 + low_bit(static_cast<std::uint64_t>(m >> 64));
}
#endif

struct Digit {
  int shift;
  int width;
};

/// Cover the active bits of `mask` with shift/mask windows, lowest
/// first. Windows are at most `dmax` wide and are shrunk so their top
/// bit is active; fully-inactive spans between windows cost nothing.
template <typename Key>
int plan_digits(Key mask, int dmax, Digit* out) {
  int nd = 0;
  while (mask != 0) {
    const int s = low_bit(mask);
    const Key rest = mask >> s;
    const Key window = rest & ((Key{1} << dmax) - 1);
    const int w = top_bit(window) + 1;
    out[nd++] = {s, w};
    mask &= ~(((Key{1} << w) - 1) << s);
  }
  return nd;
}

template <typename Elem>
void wc_insertion_sort(Elem* a, std::size_t n, SortStats* st) {
  std::uint64_t moves = 0;
  for (std::size_t i = 1; i < n; ++i) {
    Elem v = a[i];
    const auto kv = key_of(v);
    std::size_t j = i;
    while (j > 0 && key_of(a[j - 1]) > kv) {
      a[j] = a[j - 1];
      --j;
      ++moves;
    }
    a[j] = v;
    ++moves;
  }
  if (st) {
    st->moves += moves;
    st->insertion_sorted += n;
  }
}

/// One stable scatter pass a -> b that counts the *next* pass's digit
/// histogram on the way through (a scatter permutes, so the histogram of
/// any other digit is unchanged by it).
template <typename Key, typename Elem>
void scatter_count(const Elem* a, Elem* b, std::size_t n, int sh,
                   std::uint32_t mk, std::uint32_t* off, int nsh,
                   std::uint32_t nmk, std::uint32_t* hn) {
  // (A two-table unrolled variant was tried here and measured slower:
  // a fourth 2^12-slot table pushes the pass's table working set past
  // L1d, costing more than the broken increment chain saves.)
  for (std::size_t i = 0; i < n; ++i) {
    const Elem& e = a[i];
    const Key k = key_of(e);
    b[off[static_cast<std::uint32_t>(k >> sh) & mk]++] = e;
    ++hn[static_cast<std::uint32_t>(k >> nsh) & nmk];
  }
}

/// Final scatter pass, run-aware flavour (accumulate paths): equal keys
/// are adjacent by now (sorted on every lower digit), so runs advance
/// the bucket cursor in one bulk add — duplicate-heavy counting inputs
/// stop serializing on the off[d] forward chain. On mostly-unique data
/// the run probe is pure overhead, so the sort path uses scatter_plain.
template <typename Key, typename Elem>
void scatter_final(const Elem* a, Elem* b, std::size_t n, int sh,
                   std::uint32_t mk, std::uint32_t* off) {
  std::size_t i = 0;
  while (i < n) {
    const Key k = key_of(a[i]);
    std::size_t j = i + 1;
    while (j < n && key_of(a[j]) == k) ++j;
    const std::uint32_t d = static_cast<std::uint32_t>(k >> sh) & mk;
    std::uint32_t o = off[d];
    off[d] = o + static_cast<std::uint32_t>(j - i);
    for (; i < j; ++i) b[o++] = a[i];
  }
}

/// Final scatter pass, plain flavour (sort path — no next histogram to
/// count, no run probing).
template <typename Key, typename Elem>
void scatter_plain(const Elem* a, Elem* b, std::size_t n, int sh,
                   std::uint32_t mk, std::uint32_t* off) {
  for (std::size_t i = 0; i < n; ++i) {
    const Elem& e = a[i];
    b[off[static_cast<std::uint32_t>(key_of(e) >> sh) & mk]++] = e;
  }
}

/// The root sweep: one read of the keys producing both the global diff
/// mask and the exact histogram of the top byte (key >> 56). The top-byte
/// counts aggregate onto any split digit whose shift lands at or above
/// bit 56 (see Split::from_root), so for wide-key inputs — random 64-bit
/// hashes, 62-bit k-mers — this single sweep replaces what used to be
/// two full passes: the planner's OR/AND sweep and the split's counting
/// sweep. The histogram is two interleaved tables (4 KB total, L1) so
/// consecutive same-bucket keys don't serialize; the OR/AND accumulators
/// are registers and measured ~free beside the counting loads.
struct RootSweep {
  std::uint64_t mask;
  std::size_t c8[256];
};

RootSweep root_sweep_u64(const std::uint64_t* p, std::size_t n) {
  RootSweep rs;
  std::size_t c2[256];
  for (int b = 0; b < 256; ++b) {
    rs.c8[b] = 0;
    c2[b] = 0;
  }
  std::uint64_t o0 = p[0], a0 = p[0], o1 = p[0], a1 = p[0];
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const std::uint64_t x = p[i], y = p[i + 1];
    o0 |= x;
    a0 &= x;
    o1 |= y;
    a1 &= y;
    ++rs.c8[x >> 56];
    ++c2[y >> 56];
  }
  if (i < n) {
    o0 |= p[i];
    a0 &= p[i];
    ++rs.c8[p[i] >> 56];
  }
  for (int b = 0; b < 256; ++b) rs.c8[b] += c2[b];
  rs.mask = (o0 | o1) ^ (a0 & a1);
  return rs;
}

/// Per-block diff mask, computed while the block is still cache-hot
/// right after the global split scatter (folding OR/AND into the split's
/// counting sweep was measured ~3x slower: three read-modify-writes per
/// element into the same table lines serialize on store forwarding).
template <typename Key, typename Elem>
Key diff_mask_of(const Elem* p, std::size_t n) {
  if constexpr (std::is_same_v<Elem, std::uint64_t>) {
    return detail::diff_mask_u64(p, n);
  } else {
    Key o = key_of(p[0]);
    Key a = o;
    for (std::size_t i = 1; i < n; ++i) {
      const Key k = key_of(p[i]);
      o |= k;
      a &= k;
    }
    return o ^ a;
  }
}

#if defined(__SSE2__)
/// Software write-combining scatter (u64, beyond-LLC payloads only):
/// per-bucket cache-line staging, whole lines flushed with non-temporal
/// stores once the bucket cursor is line-aligned. Straight stores cover
/// the unaligned head and the staged tail.
void wc_nt_scatter_u64(const std::uint64_t* src, std::uint64_t* dst,
                       std::size_t n, int sh, std::uint32_t mk,
                       std::size_t* off, std::uint32_t slots) {
  alignas(64) std::uint64_t buf[256][8];
  std::uint8_t fill[256] = {};
  for (std::size_t i = 0; i < n; ++i) {
    if (i + 64 < n) __builtin_prefetch(&src[i + 64], 0, 0);
    const std::uint64_t x = src[i];
    const auto d = static_cast<std::uint32_t>(x >> sh) & mk;
    const std::size_t p = off[d];
    if ((p & 7) != 0) {  // head: store straight until line-aligned
      dst[p] = x;
      off[d] = p + 1;
      continue;
    }
    buf[d][fill[d]++] = x;
    if (fill[d] == 8) {
      auto* q = reinterpret_cast<__m128i*>(dst + p);
      const auto* s = reinterpret_cast<const __m128i*>(buf[d]);
      _mm_stream_si128(q + 0, _mm_load_si128(s + 0));
      _mm_stream_si128(q + 1, _mm_load_si128(s + 1));
      _mm_stream_si128(q + 2, _mm_load_si128(s + 2));
      _mm_stream_si128(q + 3, _mm_load_si128(s + 3));
      off[d] = p + 8;
      fill[d] = 0;
    }
  }
  for (std::uint32_t d = 0; d < slots; ++d) {  // drain staged tails
    std::size_t p = off[d];
    for (std::uint8_t f = 0; f < fill[d]; ++f) dst[p++] = buf[d][f];
    off[d] = p;
  }
  _mm_sfence();
}
#endif

/// Scratch for the split scatter's fused per-block first-digit
/// histograms (separate from the element ping-pong slab). One slab per
/// split depth: a block that splits again must not clobber the
/// histograms its parent still reads for later blocks.
std::uint32_t* wc_bh_scratch(std::size_t slots_total, int depth) {
  thread_local std::vector<std::uint32_t> slab[kMaxSplitDepth];
  auto& s = slab[depth];
  if (s.size() < slots_total) s.resize(slots_total);
  return s.data();
}

/// The split-level scatter: straight stores with stream prefetch while
/// the destination can live in the LLC, write-combining NT lines beyond.
/// When `bh` is non-null the straight path also counts, per block, the
/// histogram of digit (key >> h0s) & (2^h0w - 1) into bh[block << h0w |
/// digit] — every leaf block shares the same first planned window, so
/// this one fused count replaces each block's own histogram sweep.
template <typename Key, typename Elem>
void scatter_split(const Elem* src, Elem* dst, std::size_t n, int sh,
                   std::uint32_t mk, std::size_t* off, std::uint32_t slots,
                   std::uint32_t* bh, int h0s, int h0w) {
#if defined(__SSE2__)
  if constexpr (std::is_same_v<Elem, std::uint64_t>) {
    if (n * sizeof(Elem) >= detail::wc_nt_threshold()) {
      wc_nt_scatter_u64(src, dst, n, sh, mk, off, slots);
      return;
    }
  }
#endif
  (void)slots;
  const auto* bytes = reinterpret_cast<const char*>(src);
  if (bh) {
    const std::uint32_t h0mk = (1u << h0w) - 1;
    for (std::size_t i = 0; i < n; ++i) {
      __builtin_prefetch(bytes + i * sizeof(Elem) + 512, 0, 0);
      const Elem& e = src[i];
      const Key k = key_of(e);
      const auto d = static_cast<std::uint32_t>(k >> sh) & mk;
      dst[off[d]++] = e;
      ++bh[(static_cast<std::size_t>(d) << h0w) |
           (static_cast<std::uint32_t>(k >> h0s) & h0mk)];
    }
    return;
  }
  for (std::size_t i = 0; i < n; ++i) {
    __builtin_prefetch(bytes + i * sizeof(Elem) + 512, 0, 0);
    const Elem& e = src[i];
    dst[off[static_cast<std::uint32_t>(key_of(e) >> sh) & mk]++] = e;
  }
}

/// Flat planned-digit LSD loop for a cache-resident (or depth-capped)
/// range. Data starts in `src`; the sorted result is left in `src` or
/// `dst` depending on pass parity — the returned pointer says which.
/// RunAware selects the final-pass kernel (see scatter_final). `h0`, if
/// non-null, is a precomputed histogram of digit (key >> h0s, h0w bits
/// wide) over this range — used only when it matches the planned first
/// window (a histogram is a property of data + digit, not of the mask,
/// so matching shift/width is the exact validity condition).
template <bool RunAware, typename Key, typename Elem>
Elem* lsd_flat(Elem* src, Elem* dst, std::size_t n, Key mask, SortStats* st,
               const std::uint32_t* h0 = nullptr, int h0s = 0, int h0w = 0) {
  Digit dig[24];
  const int nd = plan_digits(mask, digit_bits_for(n), dig);
  if (nd == 0) return src;  // unreachable (callers guard mask != 0)
  alignas(64) std::uint32_t h[kMaxSlots];
  alignas(64) std::uint32_t hn[kMaxSlots];
  alignas(64) std::uint32_t off[kMaxSlots];
  if (h0 != nullptr && dig[0].shift == h0s && dig[0].width == h0w) {
    std::memcpy(h, h0, sizeof(std::uint32_t) << h0w);
  } else {
    const int sh = dig[0].shift;
    const std::uint32_t mk = (1u << dig[0].width) - 1;
    std::memset(h, 0, sizeof(std::uint32_t) << dig[0].width);
    for (std::size_t i = 0; i < n; ++i)
      ++h[static_cast<std::uint32_t>(key_of(src[i]) >> sh) & mk];
    if (st) ++st->passes;
  }
  Elem* a = src;
  Elem* b = dst;
  for (int p = 0; p < nd; ++p) {
    const int sh = dig[p].shift;
    const std::uint32_t mk = (1u << dig[p].width) - 1;
    const std::uint32_t slots = 1u << dig[p].width;
    std::uint32_t sum = 0;
    for (std::uint32_t c = 0; c < slots; ++c) {
      off[c] = sum;
      sum += h[c];
    }
    if (p + 1 < nd) {
      const int nsh = dig[p + 1].shift;
      const std::uint32_t nmk = (1u << dig[p + 1].width) - 1;
      std::memset(hn, 0, sizeof(std::uint32_t) << dig[p + 1].width);
      scatter_count<Key>(a, b, n, sh, mk, off, nsh, nmk, hn);
      std::memcpy(h, hn, sizeof(std::uint32_t) << dig[p + 1].width);
    } else if constexpr (RunAware) {
      scatter_final<Key>(a, b, n, sh, mk, off);
    } else {
      scatter_plain<Key>(a, b, n, sh, mk, off);
    }
    if (st) {
      st->moves += n;
      ++st->passes;
    }
    std::swap(a, b);
  }
  return a;
}

/// Split bookkeeping shared by the sort and fused-accumulate cores: one
/// counting sweep (two interleaved tables so consecutive same-bucket
/// elements don't serialize), prefix sums, then the global scatter. Each
/// block's own diff mask is taken right before its recursion, while the
/// block is cache-hot (see diff_mask_of).
template <typename Key, typename Elem>
struct Split {
  int shift = 0;
  std::uint32_t slots = 0;
  std::size_t count[256];
  std::size_t start[257];

  void build(const Elem* src, std::size_t n, Key mask) {
    int sbits = 1;
    while (((n * sizeof(Elem)) >> sbits) > kWcBlockBytes &&
           sbits < kMaxSplitBits)
      ++sbits;
    const int hi = top_bit(mask);
    shift = hi - sbits + 1;
    if (shift < 0) shift = 0;
    slots = 1u << (hi - shift + 1);
    std::size_t c2[256];
    for (std::uint32_t c = 0; c < slots; ++c) {
      count[c] = 0;
      c2[c] = 0;
    }
    const std::uint32_t mk = slots - 1;
    std::size_t i = 0;
    for (; i + 2 <= n; i += 2) {
      ++count[static_cast<std::uint32_t>(key_of(src[i]) >> shift) & mk];
      ++c2[static_cast<std::uint32_t>(key_of(src[i + 1]) >> shift) & mk];
    }
    if (i < n)
      ++count[static_cast<std::uint32_t>(key_of(src[i]) >> shift) & mk];
    std::size_t sum = 0;
    for (std::uint32_t c = 0; c < slots; ++c) {
      count[c] += c2[c];
      start[c] = sum;
      sum += count[c];
    }
    start[slots] = sum;
  }

  /// Build from the root sweep's top-byte histogram instead of a fresh
  /// counting pass. Exact whenever the chosen shift lands at or above
  /// bit 56: bucket b of c8 holds the keys whose top byte is b, and they
  /// all carry split digit (b >> (shift - 56)) & (slots - 1) — the same
  /// value build() would have counted. Caller guarantees
  /// top_bit(mask) >= 56.
  void from_root(const std::size_t* c8, std::size_t n, Key mask) {
    int sbits = 1;
    while (((n * sizeof(Elem)) >> sbits) > kWcBlockBytes &&
           sbits < kMaxSplitBits)
      ++sbits;
    const int hi = top_bit(mask);
    shift = hi - sbits + 1;
    if (shift < 56) shift = 56;
    slots = 1u << (hi - shift + 1);
    const std::uint32_t mk = slots - 1;
    for (std::uint32_t c = 0; c < slots; ++c) count[c] = 0;
    const int s = shift - 56;
    for (std::uint32_t b = 0; b < 256; ++b) count[(b >> s) & mk] += c8[b];
    std::size_t sum = 0;
    for (std::uint32_t c = 0; c < slots; ++c) {
      start[c] = sum;
      sum += count[c];
    }
    start[slots] = sum;
  }

  void scatter(const Elem* src, Elem* dst, std::size_t n, SortStats* st,
               std::uint32_t* bh = nullptr, int h0s = 0, int h0w = 0) {
    std::size_t off[256];
    std::memcpy(off, start, slots * sizeof(std::size_t));
    scatter_split<Key>(src, dst, n, shift, slots - 1, off, slots, bh, h0s,
                       h0w);
    if (st) {
      st->moves += n;
      st->passes += 2;  // the counting sweep and the scatter
    }
  }

  /// Set up the fused per-block first-digit histogram for this split (or
  /// return null when it doesn't apply — NT path, or nothing below the
  /// split). h0s/h0w receive the first planned window of the leaf mask.
  std::uint32_t* fused_histograms(std::size_t n, Key below, int depth,
                                  int* h0s, int* h0w) {
    constexpr bool may_nt = std::is_same_v<Elem, std::uint64_t>;
    if ((may_nt && n * sizeof(Elem) >= detail::wc_nt_threshold()) || below == 0)
      return nullptr;
    Digit d0[24];
    plan_digits(below, kMaxDigitBits, d0);
    *h0s = d0[0].shift;
    *h0w = d0[0].width;
    const std::size_t total = static_cast<std::size_t>(slots) << *h0w;
    if (total > (std::size_t{128} << 10))  // > 512 KB of tables: L2 thrash
      return nullptr;
    std::uint32_t* bh = wc_bh_scratch(total, depth);
    std::memset(bh, 0, total * sizeof(std::uint32_t));
    return bh;
  }
};

template <bool RunAware, typename Key, typename Elem>
Elem* sort_core(Elem* src, Elem* dst, std::size_t n, Key mask, int depth,
                SortStats* st, const std::uint32_t* h0 = nullptr, int h0s = 0,
                int h0w = 0);

/// Scatter an already-built split and recurse into its blocks. Separate
/// from sort_core so the root driver can enter with a split built from
/// the root sweep's histogram (Split::from_root) and skip the counting
/// pass.
template <bool RunAware, typename Key, typename Elem>
Elem* run_split(Split<Key, Elem>& sp, Elem* src, Elem* dst, std::size_t n,
                Key mask, int depth, SortStats* st) {
  const Key below = mask & static_cast<Key>((Key{1} << sp.shift) - Key{1});
  int bs = 0, bw = 0;
  std::uint32_t* bh = sp.fused_histograms(n, below, depth, &bs, &bw);
  sp.scatter(src, dst, n, st, bh, bs, bw);
  // One block: sort [at, at+len) in place, leaving the result in src.
  // Blocks touch disjoint src/dst ranges and read-only slices of bh, so
  // any execution order produces the same bytes.
  auto run_block = [&](std::uint32_t c, SortStats* bst) {
    const std::size_t len = sp.count[c];
    const std::size_t at = sp.start[c];
    // Leaf-sized blocks take the free superset mask (bits at and above
    // the split shift are constant within a block); blocks that will
    // recurse again pay one diff sweep for a better-informed split.
    Key bm;
    if (len * sizeof(Elem) > kWcBlockBytes && depth + 1 < kMaxSplitDepth) {
      bm = diff_mask_of<Key>(dst + at, len);
      if (bst) ++bst->passes;
    } else {
      bm = below;
    }
    const std::uint32_t* ch =
        bh ? bh + (static_cast<std::size_t>(c) << bw) : nullptr;
    Elem* r = sort_core<RunAware, Key>(dst + at, src + at, len, bm, depth + 1,
                                       bst, ch, bs, bw);
    if (r != src + at) {
      std::copy_n(r, len, src + at);
      if (bst) bst->moves += len;
    }
  };
  util::ThreadPool& pool = util::ThreadPool::host();
  if (pool.parallelism() > 1) {
    // Per-block stats accumulate privately and reduce in fixed block
    // order, so the reported SortStats (and thus every simulated charge
    // derived from them) are identical at any worker count.
    std::array<SortStats, 256> bstats{};
    util::ThreadPool::Group g(pool);
    for (std::uint32_t c = 0; c < sp.slots; ++c) {
      if (sp.count[c] == 0) continue;
      SortStats* bst = st ? &bstats[c] : nullptr;
      g.submit([&run_block, bst, c] { run_block(c, bst); });
    }
    g.wait();
    if (st)
      for (std::uint32_t c = 0; c < sp.slots; ++c) *st += bstats[c];
  } else {
    for (std::uint32_t c = 0; c < sp.slots; ++c) {
      if (sp.count[c] == 0) continue;
      run_block(c, st);
    }
  }
  return src;
}

template <bool RunAware, typename Key, typename Elem>
Elem* sort_core(Elem* src, Elem* dst, std::size_t n, Key mask, int depth,
                SortStats* st, const std::uint32_t* h0, int h0s, int h0w) {
  if (mask == 0) return src;
  if (n <= kWcTinyElements) {
    wc_insertion_sort(src, n, st);
    return src;
  }
  if (n * sizeof(Elem) <= kWcBlockBytes || depth >= kMaxSplitDepth)
    return lsd_flat<RunAware, Key>(src, dst, n, mask, st, h0, h0s, h0w);

  Split<Key, Elem> sp;
  sp.build(src, n, mask);
  return run_split<RunAware, Key>(sp, src, dst, n, mask, depth, st);
}

void emit_runs(const std::uint64_t* a, std::size_t n,
               std::vector<kmer::KmerCount64>& out) {
  std::size_t i = 0;
  while (i < n) {
    const std::uint64_t k = a[i];
    std::size_t j = i + 1;
    while (j < n && a[j] == k) ++j;
    out.push_back({k, j - i});
    i = j;
  }
}

void accum_core(std::uint64_t* src, std::uint64_t* dst, std::size_t n,
                std::uint64_t mask, int depth, SortStats* st,
                std::vector<kmer::KmerCount64>& out,
                const std::uint32_t* h0 = nullptr, int h0s = 0, int h0w = 0);

/// The accumulate flavour of run_split (same structure, recursing into
/// accum_core so each block is emitted while cache-hot).
void run_split_accum(Split<std::uint64_t, std::uint64_t>& sp,
                     std::uint64_t* src, std::uint64_t* dst, std::size_t n,
                     std::uint64_t mask, int depth, SortStats* st,
                     std::vector<kmer::KmerCount64>& out) {
  const std::uint64_t below = mask & ((std::uint64_t{1} << sp.shift) - 1);
  int bs = 0, bw = 0;
  std::uint32_t* bh = sp.fused_histograms(n, below, depth, &bs, &bw);
  sp.scatter(src, dst, n, st, bh, bs, bw);
  auto run_block = [&](std::uint32_t c, SortStats* bst,
                       std::vector<kmer::KmerCount64>& bout) {
    const std::size_t len = sp.count[c];
    const std::size_t at = sp.start[c];
    std::uint64_t bm;
    if (len * sizeof(std::uint64_t) > kWcBlockBytes &&
        depth + 1 < kMaxSplitDepth) {
      bm = detail::diff_mask_u64(dst + at, len);
      if (bst) ++bst->passes;
    } else {
      bm = below;
    }
    const std::uint32_t* ch =
        bh ? bh + (static_cast<std::size_t>(c) << bw) : nullptr;
    accum_core(dst + at, src + at, len, bm, depth + 1, bst, bout, ch, bs, bw);
  };
  util::ThreadPool& pool = util::ThreadPool::host();
  if (pool.parallelism() > 1) {
    // Blocks emit into private vectors, concatenated in ascending block
    // order afterwards: equal keys never span blocks, so the result is
    // byte-identical to the serial append, at any worker count.
    std::array<SortStats, 256> bstats{};
    std::array<std::vector<kmer::KmerCount64>, 256> bouts;
    util::ThreadPool::Group g(pool);
    for (std::uint32_t c = 0; c < sp.slots; ++c) {
      if (sp.count[c] == 0) continue;
      SortStats* bst = st ? &bstats[c] : nullptr;
      auto* bout = &bouts[c];
      g.submit([&run_block, bst, bout, c] { run_block(c, bst, *bout); });
    }
    g.wait();
    for (std::uint32_t c = 0; c < sp.slots; ++c) {
      if (st) *st += bstats[c];
      out.insert(out.end(), bouts[c].begin(), bouts[c].end());
    }
  } else {
    for (std::uint32_t c = 0; c < sp.slots; ++c) {
      if (sp.count[c] == 0) continue;
      run_block(c, st, out);
    }
  }
}

/// Fused sort + accumulate core: blocks are swept into {kmer, count}
/// records immediately after their final pass, while still cache-hot.
/// Blocks are visited in ascending split-digit order and equal keys can
/// never span blocks, so appending per block keeps `out` globally sorted.
void accum_core(std::uint64_t* src, std::uint64_t* dst, std::size_t n,
                std::uint64_t mask, int depth, SortStats* st,
                std::vector<kmer::KmerCount64>& out, const std::uint32_t* h0,
                int h0s, int h0w) {
  if (mask == 0) {
    out.push_back({src[0], n});
    return;
  }
  if (n <= kWcTinyElements) {
    wc_insertion_sort(src, n, st);
    emit_runs(src, n, out);
    return;
  }
  if (n * sizeof(std::uint64_t) <= kWcBlockBytes || depth >= kMaxSplitDepth) {
    const std::uint64_t* r =
        lsd_flat<true, std::uint64_t>(src, dst, n, mask, st, h0, h0s, h0w);
    emit_runs(r, n, out);
    return;
  }

  Split<std::uint64_t, std::uint64_t> sp;
  sp.build(src, n, mask);
  run_split_accum(sp, src, dst, n, mask, depth, st, out);
}

}  // namespace

namespace detail {

void sort_engine_u64(std::uint64_t* data, std::size_t n, SortStats* st,
                     std::uint64_t* mask_out) {
  if (mask_out) *mask_out = 0;
  if (n <= 1) return;
  if (n <= kWcTinyElements) {
    if (mask_out) *mask_out = diff_mask_u64(data, n);
    wc_insertion_sort(data, n, st);
    return;
  }
  const RootSweep rs = root_sweep_u64(data, n);
  if (st) ++st->passes;
  if (mask_out) *mask_out = rs.mask;
  if (rs.mask == 0) return;
  auto* tmp =
      reinterpret_cast<std::uint64_t*>(wc_scratch(n * sizeof(std::uint64_t)));
  std::uint64_t* r;
  if (n * sizeof(std::uint64_t) > kWcBlockBytes && top_bit(rs.mask) >= 56) {
    // Wide-key fast path: the root sweep's top-byte histogram doubles as
    // the split's counting pass (Split::from_root), so the first data
    // read the splitter does is already the scatter.
    Split<std::uint64_t, std::uint64_t> sp;
    sp.from_root(rs.c8, n, rs.mask);
    r = run_split<false, std::uint64_t>(sp, data, tmp, n, rs.mask, 0, st);
  } else {
    r = sort_core<false, std::uint64_t>(data, tmp, n, rs.mask, 0, st);
  }
  if (r != data) {
    std::memcpy(data, r, n * sizeof(std::uint64_t));
    if (st) st->moves += n;
  }
}

}  // namespace detail

SortStats wc_radix_sort(std::uint64_t* first, std::size_t n) {
  SortStats st;
  st.elements = n;
  detail::sort_engine_u64(first, n, &st);
  return st;
}

std::vector<kmer::KmerCount64> wc_sort_accumulate(
    std::vector<std::uint64_t>& keys, SortStats* stats) {
  SortStats st;
  st.elements = keys.size();
  std::vector<kmer::KmerCount64> out;
  const std::size_t n = keys.size();
  if (n > 0) {
    out.reserve(n / 4 + 16);  // avoids most regrow copies mid-emit
    auto* tmp = reinterpret_cast<std::uint64_t*>(
        detail::wc_scratch(n * sizeof(std::uint64_t)));
    if (n > kWcTinyElements) {
      const RootSweep rs = root_sweep_u64(keys.data(), n);
      ++st.passes;
      if (rs.mask != 0 && n * sizeof(std::uint64_t) > kWcBlockBytes &&
          top_bit(rs.mask) >= 56) {
        // Same wide-key fast path as sort_engine_u64: the root sweep
        // already counted the split digit.
        Split<std::uint64_t, std::uint64_t> sp;
        sp.from_root(rs.c8, n, rs.mask);
        run_split_accum(sp, keys.data(), tmp, n, rs.mask, 0, &st, out);
      } else {
        accum_core(keys.data(), tmp, n, rs.mask, 0, &st, out);
      }
    } else {
      const std::uint64_t mask = detail::diff_mask_u64(keys.data(), n);
      ++st.passes;
      accum_core(keys.data(), tmp, n, mask, 0, &st, out);
    }
    st.moves += out.size();  // the record emission itself
    ++st.passes;
  }
  if (stats) *stats = st;
  return out;
}

template <typename Word>
SortStats wc_sort_accumulate_pairs(std::vector<kmer::KmerCount<Word>>& v) {
  using Rec = kmer::KmerCount<Word>;
  SortStats st;
  st.elements = v.size();
  const std::size_t n = v.size();
  if (n <= 1) return st;

  Word mor = v[0].kmer;
  Word mand = v[0].kmer;
  for (std::size_t i = 1; i < n; ++i) {
    mor |= v[i].kmer;
    mand &= v[i].kmer;
  }
  const Word mask = mor ^ mand;
  ++st.passes;

  if (mask != 0) {
    if (n <= kWcTinyElements) {
      wc_insertion_sort(v.data(), n, &st);
    } else {
      auto* tmp = reinterpret_cast<Rec*>(detail::wc_scratch(n * sizeof(Rec)));
      Rec* r = sort_core<true, Word>(v.data(), tmp, n, mask, 0, &st);
      if (r != v.data()) {
        std::copy_n(r, n, v.data());
        st.moves += n;
      }
    }
  }

  // In-place merge of adjacent equal keys (the write cursor trails the
  // read cursor, so compaction is safe).
  std::size_t w = 0;
  for (std::size_t i = 1; i < n; ++i) {
    if (v[i].kmer == v[w].kmer) {
      v[w].count += v[i].count;
    } else {
      v[++w] = v[i];
    }
  }
  v.resize(w + 1);
  st.moves += w + 1;
  ++st.passes;
  return st;
}

template SortStats wc_sort_accumulate_pairs<kmer::Kmer64>(
    std::vector<kmer::KmerCount<kmer::Kmer64>>& v);
#ifdef __SIZEOF_INT128__
template SortStats wc_sort_accumulate_pairs<kmer::Kmer128>(
    std::vector<kmer::KmerCount<kmer::Kmer128>>& v);
#endif

}  // namespace dakc::sort
