// Leveled stderr logging with a global threshold.
//
// The library itself logs nothing above kDebug in hot paths; harnesses use
// kInfo for progress. Not thread-safe beyond line atomicity (each message
// is written with a single fwrite).
#pragma once

#include <sstream>
#include <string>

namespace dakc {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Set/get the global threshold; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emit one message (appends '\n').
void log_message(LogLevel level, const std::string& msg);

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_message(level_, os_.str()); }
  template <typename T>
  LogLine& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace dakc

#define DAKC_LOG(level) ::dakc::detail::LogLine(::dakc::LogLevel::level)
