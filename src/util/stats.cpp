#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace dakc {

Summary summarize(const std::vector<double>& samples) {
  Summary s;
  s.n = samples.size();
  if (samples.empty()) return s;
  std::vector<double> sorted = samples;
  std::sort(sorted.begin(), sorted.end());
  s.min = sorted.front();
  s.max = sorted.back();
  double sum = 0.0;
  for (double v : sorted) sum += v;
  s.mean = sum / static_cast<double>(s.n);
  double var = 0.0;
  for (double v : sorted) var += (v - s.mean) * (v - s.mean);
  s.stddev = std::sqrt(var / static_cast<double>(s.n));
  const std::size_t mid = s.n / 2;
  s.median = (s.n % 2) ? sorted[mid] : 0.5 * (sorted[mid - 1] + sorted[mid]);
  return s;
}

double percentile(std::vector<double> samples, double p) {
  DAKC_CHECK(!samples.empty());
  DAKC_CHECK(p >= 0.0 && p <= 100.0);
  std::sort(samples.begin(), samples.end());
  if (samples.size() == 1) return samples[0];
  const double rank = p / 100.0 * static_cast<double>(samples.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, samples.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return samples[lo] * (1.0 - frac) + samples[hi] * frac;
}

double imbalance(const std::vector<double>& per_pe_load) {
  if (per_pe_load.empty()) return 1.0;
  const Summary s = summarize(per_pe_load);
  if (s.mean == 0.0) return 1.0;
  return s.max / s.mean;
}

}  // namespace dakc
