// Minimal command-line flag parser for examples and bench harnesses.
//
// Supports "--name value" and "--name=value" forms plus boolean switches.
// Flags are declared with defaults before parse(); unknown flags are an
// error so typos surface immediately. Example:
//
//   CliParser cli("quickstart", "Count k-mers of a FASTQ file");
//   auto& k = cli.add_int("k", 31, "k-mer length");
//   auto& in = cli.add_string("input", "", "FASTQ path (empty: synthetic)");
//   cli.parse(argc, argv);            // exits with usage on --help / error
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace dakc {

class CliParser {
 public:
  CliParser(std::string program, std::string description);

  std::int64_t& add_int(const std::string& name, std::int64_t def,
                        const std::string& help);
  double& add_double(const std::string& name, double def,
                     const std::string& help);
  std::string& add_string(const std::string& name, const std::string& def,
                          const std::string& help);
  bool& add_flag(const std::string& name, bool def, const std::string& help);

  /// Parse argv. On --help prints usage and exits 0; on error prints the
  /// problem plus usage and exits 2.
  void parse(int argc, char** argv);

  /// Parse from a vector, returning false + message instead of exiting
  /// (used by tests).
  bool try_parse(const std::vector<std::string>& args, std::string* error);

  std::string usage() const;

 private:
  enum class Kind { kInt, kDouble, kString, kFlag };
  struct Option {
    Kind kind;
    std::string help;
    std::string default_repr;
    std::int64_t i = 0;
    double d = 0.0;
    std::string s;
    bool b = false;
  };
  Option& declare(const std::string& name, Kind kind, const std::string& help);
  bool assign(Option& opt, const std::string& value, std::string* error,
              const std::string& name);

  std::string program_;
  std::string description_;
  std::map<std::string, Option> options_;
  std::vector<std::string> order_;
};

}  // namespace dakc
