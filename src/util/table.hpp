// Plain-text table renderer used by the benchmark harnesses.
//
// Each figure/table reproduction prints its rows through this class so all
// bench output shares one aligned, greppable format. Columns are declared
// up front; cells are strings, formatted by the caller (format.hpp has the
// numeric helpers).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace dakc {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  /// Append a row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  /// Render with aligned columns, a header rule, and 2-space gutters.
  std::string render() const;

  /// Render as comma-separated values (headers first).
  std::string render_csv() const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Print a section banner for a bench ("== Figure 7: strong scaling ==").
void print_banner(std::ostream& os, const std::string& title);

}  // namespace dakc
