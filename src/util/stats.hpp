// Summary statistics over small sample vectors (bench repetitions,
// per-PE load distributions). Kept deliberately simple; not streaming.
#pragma once

#include <cstdint>
#include <vector>

namespace dakc {

struct Summary {
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double stddev = 0.0;  ///< population standard deviation
  double median = 0.0;
  std::size_t n = 0;
};

/// Compute a Summary; an empty input yields an all-zero Summary.
Summary summarize(const std::vector<double>& samples);

/// p-th percentile (0 <= p <= 100) with linear interpolation.
double percentile(std::vector<double> samples, double p);

/// max/mean load-imbalance factor; 1.0 means perfectly balanced.
double imbalance(const std::vector<double>& per_pe_load);

}  // namespace dakc
