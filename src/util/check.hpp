// Lightweight runtime-check macros used across the library.
//
// DAKC_CHECK is always on (it guards invariants whose violation would
// corrupt results); DAKC_ASSERT compiles away in NDEBUG builds and guards
// internal consistency that is cheap to re-derive.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace dakc {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::string what = std::string("DAKC_CHECK failed: ") + expr + " at " +
                     file + ":" + std::to_string(line);
  if (!msg.empty()) what += ": " + msg;
  throw std::logic_error(what);
}

}  // namespace dakc

#define DAKC_CHECK(expr)                                        \
  do {                                                          \
    if (!(expr)) ::dakc::check_failed(#expr, __FILE__, __LINE__, ""); \
  } while (0)

#define DAKC_CHECK_MSG(expr, msg)                                 \
  do {                                                            \
    if (!(expr)) ::dakc::check_failed(#expr, __FILE__, __LINE__, (msg)); \
  } while (0)

#ifdef NDEBUG
#define DAKC_ASSERT(expr) ((void)0)
#else
#define DAKC_ASSERT(expr) DAKC_CHECK(expr)
#endif
