#include "util/table.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "util/check.hpp"

namespace dakc {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  DAKC_CHECK(!headers_.empty());
}

void TextTable::add_row(std::vector<std::string> cells) {
  DAKC_CHECK_MSG(cells.size() == headers_.size(),
                 "row width does not match header width");
  rows_.push_back(std::move(cells));
}

std::string TextTable::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << row[c];
      if (c + 1 < row.size())
        os << std::string(widths[c] - row[c].size() + 2, ' ');
    }
    os << '\n';
  };
  emit(headers_);
  std::size_t total = 0;
  for (auto w : widths) total += w + 2;
  os << std::string(total > 2 ? total - 2 : total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::string TextTable::render_csv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      os << row[c];
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

void print_banner(std::ostream& os, const std::string& title) {
  os << "\n== " << title << " ==\n";
}

}  // namespace dakc
