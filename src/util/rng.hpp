// Deterministic pseudo-random number generation.
//
// Everything in this repository that consumes randomness (genome
// generation, read simulation, property tests, owner hashing salts) goes
// through these generators so that a fixed seed reproduces a run exactly,
// on any platform. splitmix64 is used for seeding / hashing; xoshiro256**
// is the workhorse stream generator.
#pragma once

#include <cstdint>
#include <limits>

namespace dakc {

/// One step of the splitmix64 sequence; also a high-quality 64-bit mixer.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Stateless mix of a single value (for hash functions).
constexpr std::uint64_t mix64(std::uint64_t x) {
  std::uint64_t s = x;
  return splitmix64(s);
}

/// xoshiro256** by Blackman & Vigna: fast, 256-bit state, passes BigCrush.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit constexpr Xoshiro256(std::uint64_t seed = 0x853c49e6748fea9bULL) {
    std::uint64_t sm = seed;
    for (auto& w : s_) w = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  constexpr result_type operator()() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound); bound must be nonzero.
  constexpr std::uint64_t below(std::uint64_t bound) {
    // Lemire's multiply-shift rejection method.
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform double in [0, 1).
  constexpr double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability p.
  constexpr bool bernoulli(double p) { return uniform() < p; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4]{};
};

}  // namespace dakc
