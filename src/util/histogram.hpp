// Count histogram utilities.
//
// The output of every k-mer counter in this repo is an ordered array of
// {kmer, count}. For analysis (k-mer spectra, genome-size estimation,
// heavy-hitter reporting) we frequently need the *histogram of counts*
// ("how many distinct k-mers occur exactly c times"), which this class
// provides together with summary statistics.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace dakc {

class CountHistogram {
 public:
  /// Record one distinct key that occurred `count` times.
  void add(std::uint64_t count, std::uint64_t multiplicity = 1);

  /// Number of distinct keys recorded.
  std::uint64_t distinct() const { return distinct_; }
  /// Sum of count * multiplicity over all records (total occurrences).
  std::uint64_t total() const { return total_; }
  /// Largest count seen (0 when empty).
  std::uint64_t max_count() const;
  /// Number of distinct keys with count == c.
  std::uint64_t at(std::uint64_t c) const;
  /// Number of distinct keys with count >= c.
  std::uint64_t at_least(std::uint64_t c) const;

  /// The count value c in [lo, hi] with the highest frequency; used for
  /// coverage-peak detection in the k-mer spectrum example. Returns 0 when
  /// the range is empty.
  std::uint64_t mode_in(std::uint64_t lo, std::uint64_t hi) const;

  const std::map<std::uint64_t, std::uint64_t>& bins() const { return bins_; }

  /// Render as "count<TAB>num_distinct" lines (the ubiquitous .histo format
  /// produced by jellyfish/KMC).
  std::string to_histo(std::uint64_t max_rows = 1000) const;

 private:
  std::map<std::uint64_t, std::uint64_t> bins_;
  std::uint64_t distinct_ = 0;
  std::uint64_t total_ = 0;
};

}  // namespace dakc
