#include "util/thread_pool.hpp"

#include "util/check.hpp"
#include "util/rng.hpp"

namespace dakc::util {

namespace {
/// Pool worker index of the current thread (-1 off-pool). Lets owners
/// push to their own deque and skip themselves when stealing.
thread_local int t_worker_index = -1;

/// Hard cap so workers_ / threads_ can be reserved up front: worker
/// threads index these vectors without locks, so the storage must never
/// reallocate once the first worker starts.
constexpr int kMaxWorkers = 64;
}  // namespace

ThreadPool& ThreadPool::host() {
  static ThreadPool pool;
  return pool;
}

ThreadPool::ThreadPool() {
  workers_.reserve(kMaxWorkers);
  threads_.reserve(kMaxWorkers);
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(sleep_m_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::set_parallelism(int threads) {
  DAKC_CHECK_MSG(threads >= 1, "parallelism must be >= 1");
  DAKC_CHECK_MSG(threads <= kMaxWorkers + 1, "parallelism beyond pool cap");
  const int target = threads - 1;
  {
    std::lock_guard<std::mutex> lk(sleep_m_);
    while (static_cast<int>(threads_.size()) < target) {
      const int index = static_cast<int>(threads_.size());
      workers_.push_back(std::make_unique<WorkerState>());
      worker_count_.store(static_cast<int>(workers_.size()),
                          std::memory_order_release);
      threads_.emplace_back([this, index] { worker_loop(index); });
    }
    active_workers_.store(target, std::memory_order_release);
    work_epoch_.fetch_add(1, std::memory_order_release);
  }
  work_cv_.notify_all();
}

void ThreadPool::set_steal_seed(std::uint64_t seed) {
  steal_seed_.store(seed, std::memory_order_relaxed);
}

void ThreadPool::push_item(Item item) {
  const int active = active_workers_.load(std::memory_order_acquire);
  DAKC_CHECK_MSG(active > 0, "task submitted to a pool with parallelism 1");
  int target = t_worker_index;
  if (target < 0 || target >= active) {
    target = static_cast<int>(rr_.fetch_add(1, std::memory_order_relaxed) %
                              static_cast<std::uint64_t>(active));
  }
  {
    WorkerState& w = *workers_[target];
    std::lock_guard<std::mutex> lk(w.m);
    w.q.push_back(std::move(item));
  }
  work_epoch_.fetch_add(1, std::memory_order_release);
  work_cv_.notify_all();
}

void ThreadPool::submit(Task fn) { push_item({nullptr, std::move(fn)}); }

bool ThreadPool::pop_own(int self, Item* out, bool group_only, Group* group) {
  if (self < 0 || self >= worker_count_.load(std::memory_order_acquire))
    return false;
  WorkerState& w = *workers_[self];
  std::lock_guard<std::mutex> lk(w.m);
  if (group_only) {
    for (auto it = w.q.rbegin(); it != w.q.rend(); ++it) {
      if (it->group == group) {
        *out = std::move(*it);
        w.q.erase(std::next(it).base());
        return true;
      }
    }
    return false;
  }
  if (w.q.empty()) return false;
  *out = std::move(w.q.back());
  w.q.pop_back();
  return true;
}

bool ThreadPool::steal(int self, Item* out, bool group_only, Group* group) {
  const int n = worker_count_.load(std::memory_order_acquire);
  if (n == 0) return false;
  // Seeded victim order: the seed never changes results (tasks are
  // independent by contract), only the interleaving the stress test
  // wants to randomize.
  thread_local std::uint64_t scan_count = 0;
  std::uint64_t h = mix64(steal_seed_.load(std::memory_order_relaxed) ^
                          (static_cast<std::uint64_t>(self + 1) << 32) ^
                          ++scan_count);
  const int start = static_cast<int>(h % static_cast<std::uint64_t>(n));
  for (int k = 0; k < n; ++k) {
    const int v = (start + k) % n;
    if (v == self) continue;
    WorkerState& w = *workers_[v];
    std::lock_guard<std::mutex> lk(w.m);
    if (group_only) {
      for (auto it = w.q.begin(); it != w.q.end(); ++it) {
        if (it->group == group) {
          *out = std::move(*it);
          w.q.erase(it);
          return true;
        }
      }
      continue;
    }
    if (w.q.empty()) continue;
    *out = std::move(w.q.front());
    w.q.pop_front();
    return true;
  }
  return false;
}

void ThreadPool::run_item(Item& item) {
  Group* g = item.group;
  item.fn();
  if (g != nullptr &&
      g->pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    std::lock_guard<std::mutex> lk(sleep_m_);
    done_cv_.notify_all();
  }
}

void ThreadPool::worker_loop(int index) {
  t_worker_index = index;
  while (true) {
    const std::uint64_t seen = work_epoch_.load(std::memory_order_acquire);
    if (index < active_workers_.load(std::memory_order_acquire)) {
      Item item;
      if (pop_own(index, &item, false, nullptr) ||
          steal(index, &item, false, nullptr)) {
        run_item(item);
        continue;
      }
    }
    std::unique_lock<std::mutex> lk(sleep_m_);
    work_cv_.wait(lk, [&] {
      return stopping_ ||
             work_epoch_.load(std::memory_order_acquire) != seen;
    });
    if (stopping_) return;
  }
}

void ThreadPool::Group::submit(Task fn) {
  // Parallelism 1: execute on the calling thread, exactly like a build
  // without the pool. (Queueing would be wrong twice over: there is no
  // worker to drain the deque, and a failed push after the pending_
  // increment would leave wait() blocked forever.)
  if (pool_.active_workers_.load(std::memory_order_acquire) == 0) {
    fn();
    return;
  }
  pending_.fetch_add(1, std::memory_order_acq_rel);
  pool_.push_item({this, std::move(fn)});
}

void ThreadPool::Group::wait() {
  while (pending_.load(std::memory_order_acquire) != 0) {
    Item item;
    if (pool_.pop_own(t_worker_index, &item, true, this) ||
        pool_.steal(t_worker_index, &item, true, this)) {
      pool_.run_item(item);
      continue;
    }
    // Every queued member is gone; the rest are running on workers.
    std::unique_lock<std::mutex> lk(pool_.sleep_m_);
    pool_.done_cv_.wait(lk, [&] {
      return pending_.load(std::memory_order_acquire) == 0;
    });
  }
}

void ThreadPool::parallel_for(
    std::size_t begin, std::size_t end, std::size_t grain,
    const std::function<void(std::size_t, std::size_t)>& body) {
  DAKC_CHECK(grain >= 1);
  if (end <= begin) return;
  if (parallelism() <= 1 || end - begin <= grain) {
    body(begin, end);
    return;
  }
  Group g(*this);
  for (std::size_t lo = begin; lo < end; lo += grain) {
    const std::size_t hi = lo + grain < end ? lo + grain : end;
    g.submit([&body, lo, hi] { body(lo, hi); });
  }
  g.wait();
}

}  // namespace dakc::util
