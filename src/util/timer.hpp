// Wall-clock timer for host-side measurements (microbenchmarks of Table IV
// and harness bookkeeping). Simulated-machine timing lives in dakc::des.
#pragma once

#include <chrono>

namespace dakc {

class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}
  void reset() { start_ = Clock::now(); }
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace dakc
