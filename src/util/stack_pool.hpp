// Pooled fiber stacks + process-wide host-memory accounting.
//
// At thousands of simulated PEs the engine's fiber stacks are the largest
// host allocation: 4096 fibers x 512 KiB = 2 GiB if naively heap-backed.
// StackPool mmaps stacks with MAP_NORESERVE so only *touched* pages are
// resident (a k-mer fiber touches a few KiB), adds a PROT_NONE guard page
// below the stack so an overflow faults instead of corrupting a neighbor
// fiber, and recycles completed fibers' stacks through a free list so a
// simulation's peak stack count tracks the number of *concurrently live*
// fibers.
//
// The host_mem_* counters are the "pooled allocator" feed behind
// RunReport::host_peak_bytes: the pools that dominate host memory at
// scale report their acquisitions here, giving a deterministic estimate
// of peak host usage that scale benchmarks can regress on without
// depending on the allocator or the kernel's RSS accounting. Two classes
// are tracked separately because their scaling laws differ and the scale
// gate checks them differently:
//
//   kStack   fiber stacks — inherently one per PE (linear in P), and
//            mostly *untouched* address space thanks to MAP_NORESERVE.
//   kBuffer  per-destination aggregation buffers (conveyor lanes, L2
//            bins, super-k-mer staging) — the allocations that were
//            O(P^2) total before lazy first-use allocation and must stay
//            proportional to *used* destinations.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

namespace dakc::util {

enum class HostMemClass : int { kStack = 0, kBuffer = 1 };

/// Record `bytes` of host memory acquired by a pooled allocator.
void host_mem_note_alloc(HostMemClass c, std::size_t bytes);
/// Record `bytes` of host memory released back.
void host_mem_note_free(HostMemClass c, std::size_t bytes);
/// Currently accounted host bytes (all classes).
std::size_t host_mem_current();
/// High-water mark of host_mem_current() since process start (or the last
/// host_mem_reset_peak()).
std::size_t host_mem_peak();
/// Per-class high-water mark.
std::size_t host_mem_class_peak(HostMemClass c);
/// Reset every high-water mark to the current level (run boundaries).
void host_mem_reset_peak();

class StackPool {
 public:
  /// One usable stack span. `base` is the lowest usable address (just
  /// above the guard page); `size` the usable bytes.
  struct Stack {
    void* base = nullptr;
    std::size_t size = 0;
  };

  static StackPool& instance();

  /// Get a stack of exactly `bytes` usable bytes (pooled or fresh).
  Stack acquire(std::size_t bytes);
  /// Return a stack; its pages are released to the OS (MADV_DONTNEED) so
  /// pooled idle stacks cost address space, not RSS.
  void release(const Stack& s);

  /// Idle (pooled) stack count — test introspection.
  std::size_t idle();

 private:
  StackPool() = default;
  std::mutex m_;
  std::unordered_map<std::size_t, std::vector<Stack>> free_;
};

}  // namespace dakc::util
