#include "util/histogram.hpp"

#include <algorithm>
#include <sstream>

namespace dakc {

void CountHistogram::add(std::uint64_t count, std::uint64_t multiplicity) {
  if (count == 0 || multiplicity == 0) return;
  bins_[count] += multiplicity;
  distinct_ += multiplicity;
  total_ += count * multiplicity;
}

std::uint64_t CountHistogram::max_count() const {
  return bins_.empty() ? 0 : bins_.rbegin()->first;
}

std::uint64_t CountHistogram::at(std::uint64_t c) const {
  auto it = bins_.find(c);
  return it == bins_.end() ? 0 : it->second;
}

std::uint64_t CountHistogram::at_least(std::uint64_t c) const {
  std::uint64_t sum = 0;
  for (auto it = bins_.lower_bound(c); it != bins_.end(); ++it)
    sum += it->second;
  return sum;
}

std::uint64_t CountHistogram::mode_in(std::uint64_t lo, std::uint64_t hi) const {
  std::uint64_t best_c = 0, best_n = 0;
  for (auto it = bins_.lower_bound(lo); it != bins_.end() && it->first <= hi;
       ++it) {
    if (it->second > best_n) {
      best_n = it->second;
      best_c = it->first;
    }
  }
  return best_c;
}

std::string CountHistogram::to_histo(std::uint64_t max_rows) const {
  std::ostringstream os;
  std::uint64_t rows = 0;
  for (const auto& [c, n] : bins_) {
    if (rows++ >= max_rows) break;
    os << c << '\t' << n << '\n';
  }
  return os.str();
}

}  // namespace dakc
