#include "util/cli.hpp"

#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "util/check.hpp"

namespace dakc {

CliParser::CliParser(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {}

CliParser::Option& CliParser::declare(const std::string& name, Kind kind,
                                      const std::string& help) {
  DAKC_CHECK_MSG(!options_.count(name), "duplicate flag: --" + name);
  Option opt;
  opt.kind = kind;
  opt.help = help;
  order_.push_back(name);
  return options_.emplace(name, std::move(opt)).first->second;
}

std::int64_t& CliParser::add_int(const std::string& name, std::int64_t def,
                                 const std::string& help) {
  Option& o = declare(name, Kind::kInt, help);
  o.i = def;
  o.default_repr = std::to_string(def);
  return o.i;
}

double& CliParser::add_double(const std::string& name, double def,
                              const std::string& help) {
  Option& o = declare(name, Kind::kDouble, help);
  o.d = def;
  o.default_repr = std::to_string(def);
  return o.d;
}

std::string& CliParser::add_string(const std::string& name,
                                   const std::string& def,
                                   const std::string& help) {
  Option& o = declare(name, Kind::kString, help);
  o.s = def;
  o.default_repr = def.empty() ? "\"\"" : def;
  return o.s;
}

bool& CliParser::add_flag(const std::string& name, bool def,
                          const std::string& help) {
  Option& o = declare(name, Kind::kFlag, help);
  o.b = def;
  o.default_repr = def ? "true" : "false";
  return o.b;
}

bool CliParser::assign(Option& opt, const std::string& value,
                       std::string* error, const std::string& name) {
  try {
    switch (opt.kind) {
      case Kind::kInt:
        opt.i = std::stoll(value);
        return true;
      case Kind::kDouble:
        opt.d = std::stod(value);
        return true;
      case Kind::kString:
        opt.s = value;
        return true;
      case Kind::kFlag:
        if (value == "true" || value == "1") {
          opt.b = true;
        } else if (value == "false" || value == "0") {
          opt.b = false;
        } else {
          *error = "--" + name + " expects true/false, got '" + value + "'";
          return false;
        }
        return true;
    }
  } catch (const std::exception&) {
    *error = "--" + name + ": cannot parse value '" + value + "'";
    return false;
  }
  return false;  // unreachable
}

bool CliParser::try_parse(const std::vector<std::string>& args,
                          std::string* error) {
  for (std::size_t i = 0; i < args.size(); ++i) {
    std::string arg = args[i];
    if (arg.rfind("--", 0) != 0) {
      *error = "positional arguments are not supported: '" + arg + "'";
      return false;
    }
    arg = arg.substr(2);
    std::string value;
    bool has_value = false;
    if (auto eq = arg.find('='); eq != std::string::npos) {
      value = arg.substr(eq + 1);
      arg = arg.substr(0, eq);
      has_value = true;
    }
    auto it = options_.find(arg);
    if (it == options_.end()) {
      *error = "unknown flag: --" + arg;
      return false;
    }
    Option& opt = it->second;
    if (!has_value) {
      if (opt.kind == Kind::kFlag) {
        opt.b = true;  // bare switch form: --verbose
        continue;
      }
      if (i + 1 >= args.size()) {
        *error = "--" + arg + " requires a value";
        return false;
      }
      value = args[++i];
    }
    if (!assign(opt, value, error, arg)) return false;
  }
  return true;
}

void CliParser::parse(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  for (const auto& a : args) {
    if (a == "--help" || a == "-h") {
      std::fputs(usage().c_str(), stdout);
      std::exit(0);
    }
  }
  std::string error;
  if (!try_parse(args, &error)) {
    std::fprintf(stderr, "error: %s\n\n%s", error.c_str(), usage().c_str());
    std::exit(2);
  }
}

std::string CliParser::usage() const {
  std::ostringstream os;
  os << program_ << " - " << description_ << "\n\nflags:\n";
  for (const auto& name : order_) {
    const Option& o = options_.at(name);
    os << "  --" << name << " (default: " << o.default_repr << ")\n      "
       << o.help << "\n";
  }
  return os.str();
}

}  // namespace dakc
