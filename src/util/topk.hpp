// Streaming top-K heavy-hitter sketch (Metwally et al.'s Space-Saving).
//
// Phase-1 skew detection (DESIGN.md §12) runs one sketch per PE over a
// sample of its outgoing keys. Space-Saving guarantees that any key whose
// true frequency exceeds stream_length / capacity is present in the
// sketch, and its stored count overestimates the true count by at most
// the smallest count in the sketch — exactly the guarantee heavy-hitter
// promotion needs (false positives cost only a little replica memory;
// false negatives are impossible above the threshold).
//
// Determinism: add() is deterministic in the stream order, and
// merge_topk_entries() is deterministic in the *multiset* of entries —
// counts are summed per key and the top K selected by (count desc, key
// asc) — so merging per-PE sketches is order-independent and every PE
// derives the identical hot set from the same sketch collection.
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <vector>

#include "util/check.hpp"

namespace dakc::util {

struct TopKEntry {
  std::uint64_t key = 0;
  std::uint64_t count = 0;
};

class TopKSketch {
 public:
  explicit TopKSketch(std::size_t capacity) : capacity_(capacity) {
    DAKC_CHECK(capacity >= 1);
    entries_.reserve(capacity);
  }

  std::size_t capacity() const { return capacity_; }
  std::size_t size() const { return entries_.size(); }
  /// Keys observed (sum of increments), monitored or not.
  std::uint64_t stream_total() const { return stream_total_; }

  /// Observe `inc` occurrences of `key`.
  void add(std::uint64_t key, std::uint64_t inc = 1) {
    stream_total_ += inc;
    for (auto& e : entries_) {
      if (e.key == key) {
        e.count += inc;
        return;
      }
    }
    if (entries_.size() < capacity_) {
      entries_.push_back({key, inc});
      return;
    }
    // Evict the minimum-count entry (ties broken by smaller key, so the
    // victim is a pure function of the sketch state) and inherit its
    // count: the Space-Saving overestimate.
    std::size_t victim = 0;
    for (std::size_t i = 1; i < entries_.size(); ++i) {
      const auto& e = entries_[i];
      const auto& v = entries_[victim];
      if (e.count < v.count || (e.count == v.count && e.key < v.key))
        victim = i;
    }
    entries_[victim].key = key;
    entries_[victim].count += inc;
  }

  /// Monitored count of `key` (0 when not monitored). An overestimate of
  /// the true frequency by at most the sketch's minimum count.
  std::uint64_t count(std::uint64_t key) const {
    for (const auto& e : entries_)
      if (e.key == key) return e.count;
    return 0;
  }

  /// Entries ordered by (count desc, key asc) — the canonical
  /// serialization order.
  std::vector<TopKEntry> sorted_entries() const {
    std::vector<TopKEntry> out = entries_;
    sort_entries(&out);
    return out;
  }

  /// Canonical (count desc, key asc) ordering shared by every consumer.
  static void sort_entries(std::vector<TopKEntry>* entries) {
    std::sort(entries->begin(), entries->end(),
              [](const TopKEntry& a, const TopKEntry& b) {
                if (a.count != b.count) return a.count > b.count;
                return a.key < b.key;
              });
  }

 private:
  std::size_t capacity_;
  std::vector<TopKEntry> entries_;
  std::uint64_t stream_total_ = 0;
};

/// Merge any number of sketch serializations into the global top `k`:
/// counts are summed per key, then the k largest survive under the
/// canonical (count desc, key asc) order. Pure function of the entry
/// *multiset* — reordering or re-chunking the input changes nothing,
/// which is what makes the merged hot set identical at every PE no
/// matter how the per-PE sketches arrived.
inline std::vector<TopKEntry> merge_topk_entries(
    const std::vector<TopKEntry>& entries, std::size_t k) {
  std::map<std::uint64_t, std::uint64_t> sums;  // ordered: deterministic
  for (const auto& e : entries) sums[e.key] += e.count;
  std::vector<TopKEntry> merged;
  merged.reserve(sums.size());
  for (const auto& [key, count] : sums) merged.push_back({key, count});
  TopKSketch::sort_entries(&merged);
  if (merged.size() > k) merged.resize(k);
  return merged;
}

}  // namespace dakc::util
