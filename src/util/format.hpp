// Small numeric-formatting helpers (gcc 12 does not ship std::format).
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>

namespace dakc {

/// Fixed-precision double, e.g. fmt_f(3.14159, 2) -> "3.14".
inline std::string fmt_f(double v, int precision = 2) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

/// Scientific notation, e.g. fmt_e(12345.0, 2) -> "1.23e+04".
inline std::string fmt_e(double v, int precision = 2) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*e", precision, v);
  return buf;
}

/// Human-readable byte size: 1536 -> "1.50 KiB".
inline std::string fmt_bytes(double bytes) {
  static const char* units[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  int u = 0;
  while (bytes >= 1024.0 && u < 4) {
    bytes /= 1024.0;
    ++u;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2f %s", bytes, units[u]);
  return buf;
}

/// Seconds with adaptive unit: 0.0000032 -> "3.20 us".
inline std::string fmt_seconds(double s) {
  char buf[64];
  if (s >= 1.0)
    std::snprintf(buf, sizeof(buf), "%.3f s", s);
  else if (s >= 1e-3)
    std::snprintf(buf, sizeof(buf), "%.3f ms", s * 1e3);
  else if (s >= 1e-6)
    std::snprintf(buf, sizeof(buf), "%.3f us", s * 1e6);
  else
    std::snprintf(buf, sizeof(buf), "%.1f ns", s * 1e9);
  return buf;
}

/// Thousands-separated integer: 1234567 -> "1,234,567".
inline std::string fmt_count(std::uint64_t v) {
  std::string digits = std::to_string(v);
  std::string out;
  int run = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (run && run % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++run;
  }
  return {out.rbegin(), out.rend()};
}

}  // namespace dakc
