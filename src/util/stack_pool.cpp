#include "util/stack_pool.hpp"

#include <sys/mman.h>
#include <unistd.h>

#include "util/check.hpp"

namespace dakc::util {

namespace {
struct Counter {
  std::atomic<std::size_t> current{0};
  std::atomic<std::size_t> peak{0};

  void add(std::size_t bytes) {
    const std::size_t cur =
        current.fetch_add(bytes, std::memory_order_relaxed) + bytes;
    std::size_t p = peak.load(std::memory_order_relaxed);
    while (cur > p &&
           !peak.compare_exchange_weak(p, cur, std::memory_order_relaxed)) {
    }
  }
  void sub(std::size_t bytes) {
    current.fetch_sub(bytes, std::memory_order_relaxed);
  }
};

Counter g_total;
Counter g_class[2];

std::size_t page_size() {
  static const std::size_t p = static_cast<std::size_t>(sysconf(_SC_PAGESIZE));
  return p;
}
}  // namespace

void host_mem_note_alloc(HostMemClass c, std::size_t bytes) {
  g_total.add(bytes);
  g_class[static_cast<int>(c)].add(bytes);
}

void host_mem_note_free(HostMemClass c, std::size_t bytes) {
  g_total.sub(bytes);
  g_class[static_cast<int>(c)].sub(bytes);
}

std::size_t host_mem_current() {
  return g_total.current.load(std::memory_order_relaxed);
}

std::size_t host_mem_peak() {
  return g_total.peak.load(std::memory_order_relaxed);
}

std::size_t host_mem_class_peak(HostMemClass c) {
  return g_class[static_cast<int>(c)].peak.load(std::memory_order_relaxed);
}

void host_mem_reset_peak() {
  g_total.peak.store(g_total.current.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
  for (Counter& c : g_class)
    c.peak.store(c.current.load(std::memory_order_relaxed),
                 std::memory_order_relaxed);
}

StackPool& StackPool::instance() {
  static StackPool* pool = new StackPool();  // leaked: fibers may outlive exit
  return *pool;
}

StackPool::Stack StackPool::acquire(std::size_t bytes) {
  const std::size_t ps = page_size();
  const std::size_t usable = (bytes + ps - 1) / ps * ps;
  {
    std::lock_guard<std::mutex> lk(m_);
    auto it = free_.find(usable);
    if (it != free_.end() && !it->second.empty()) {
      Stack s = it->second.back();
      it->second.pop_back();
      host_mem_note_alloc(HostMemClass::kStack, s.size);
      return s;
    }
  }
  // Guard page below the stack; MAP_NORESERVE keeps untouched pages out
  // of both commit charge and RSS, so thousands of mostly-idle fiber
  // stacks cost address space rather than memory.
  void* map = mmap(nullptr, usable + ps, PROT_NONE,
                   MAP_PRIVATE | MAP_ANONYMOUS | MAP_NORESERVE, -1, 0);
  DAKC_CHECK_MSG(map != MAP_FAILED, "fiber stack mmap failed");
  void* base = static_cast<char*>(map) + ps;
  DAKC_CHECK_MSG(mprotect(base, usable, PROT_READ | PROT_WRITE) == 0,
                 "fiber stack mprotect failed");
  host_mem_note_alloc(HostMemClass::kStack, usable);
  return Stack{base, usable};
}

void StackPool::release(const Stack& s) {
  if (s.base == nullptr) return;
  host_mem_note_free(HostMemClass::kStack, s.size);
  // Drop the touched pages now: an idle pooled stack should cost nothing
  // resident. The mapping stays PROT_READ|WRITE, so reuse needs no
  // further syscall; the kernel hands back zero pages on next touch.
  madvise(s.base, s.size, MADV_DONTNEED);
  std::lock_guard<std::mutex> lk(m_);
  free_[s.size].push_back(s);
}

std::size_t StackPool::idle() {
  std::lock_guard<std::mutex> lk(m_);
  std::size_t n = 0;
  for (const auto& [sz, v] : free_) n += v.size();
  return n;
}

}  // namespace dakc::util
