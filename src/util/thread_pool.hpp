// Deterministic work-stealing host thread pool.
//
// This pool parallelizes HOST execution only: wc_radix split blocks,
// parallel_radix_sort buckets, and the DES engine's warm fiber segments
// all run on it. Nothing simulated depends on it — every consumer is
// required (and tested) to produce bit-identical results at any worker
// count and any steal order, so the pool needs no determinism of its
// own; it only needs to never deadlock and never run a task twice.
//
// Structure: one deque per worker (owner pushes/pops the back, thieves
// take the front), a seeded per-thread RNG choosing steal victims (the
// seed is a test hook: the steal-order stress test sweeps seeds and
// asserts output equality), and a Group abstraction for fork/join use:
//
//   ThreadPool::Group g(pool);
//   for (...) g.submit([=]{ ... });
//   g.wait();   // the waiter HELPS, but only with tasks of this group
//
// The help restriction matters: free-standing tasks submitted via
// submit() can suspend their host thread for a long time (the DES
// engine's warm fiber segments run until the fiber hits an interaction
// fence). A waiter that picked one of those up inside wait() would nest
// a fiber switch on a foreign stack. Group waiters therefore execute
// group members only; free-standing tasks are executed exclusively by
// the top of the worker loop.
//
// No wall-clock anywhere: sleeping is untimed condition_variable waits,
// so the pool is safe to link into simulation code (tools/lint_simtime.sh
// stays green).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace dakc::util {

class ThreadPool {
 public:
  using Task = std::function<void()>;

  /// Process-wide pool shared by the sort engine and the parallel DES
  /// runtime. Starts with zero workers and an effective parallelism of
  /// 1 (everything inline); grow it with set_parallelism().
  static ThreadPool& host();

  ThreadPool();
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Set the effective parallelism to `threads` (>= 1): spawns missing
  /// workers up to threads - 1 and puts any surplus workers to sleep.
  /// Threads are never destroyed until process exit, so flipping between
  /// 1 and N is cheap and the "1" setting still executes everything on
  /// the calling thread exactly like a build without the pool.
  void set_parallelism(int threads);
  /// Current effective parallelism (1 = serial).
  int parallelism() const {
    return 1 + active_workers_.load(std::memory_order_acquire);
  }

  /// Seed the steal-victim RNG of every worker. Outputs must not depend
  /// on it (that is the determinism contract this pool exists to test);
  /// the stress test sweeps seeds to randomize steal interleavings.
  void set_steal_seed(std::uint64_t seed);

  /// Submit a free-standing task. Only the worker loop runs these (never
  /// a Group waiter), so they may occupy their worker indefinitely.
  void submit(Task fn);

  /// Fork/join task group. Submit all tasks first, then wait() once;
  /// the waiter executes queued tasks of this group while waiting. At
  /// parallelism 1 submit() runs the task inline on the calling thread.
  class Group {
   public:
    explicit Group(ThreadPool& pool) : pool_(pool) {}
    Group(const Group&) = delete;
    Group& operator=(const Group&) = delete;
    ~Group() { wait(); }

    void submit(Task fn);
    void wait();

   private:
    friend class ThreadPool;
    ThreadPool& pool_;
    std::atomic<std::size_t> pending_{0};
  };

  /// Run body(lo, hi) over a fixed decomposition of [begin, end) into
  /// chunks of `grain` (the chunking depends only on the range and the
  /// grain, never on the worker count, so per-chunk side outputs can be
  /// reduced in chunk order bit-identically at any parallelism). Runs
  /// inline when parallelism() == 1 or the range fits one chunk.
  void parallel_for(std::size_t begin, std::size_t end, std::size_t grain,
                    const std::function<void(std::size_t, std::size_t)>& body);

 private:
  struct Item {
    Group* group;  // nullptr for free-standing tasks
    Task fn;
  };
  struct WorkerState {
    std::mutex m;
    std::deque<Item> q;
  };

  void push_item(Item item);
  bool pop_own(int self, Item* out, bool group_only, Group* group);
  bool steal(int self, Item* out, bool group_only, Group* group);
  void run_item(Item& item);
  void worker_loop(int index);

  std::vector<std::unique_ptr<WorkerState>> workers_;
  std::vector<std::thread> threads_;
  std::atomic<int> active_workers_{0};
  /// Published size of workers_ (grow-only). Lock-free paths (steal,
  /// pop_own) must read this, not workers_.size(): the vector grows
  /// under sleep_m_ while they scan, and although the up-front reserve
  /// makes reallocation impossible, the size field itself would race.
  std::atomic<int> worker_count_{0};
  std::atomic<std::uint64_t> steal_seed_{0x9E3779B97F4A7C15ULL};
  std::atomic<std::uint64_t> rr_{0};  // round-robin submit cursor

  // Sleep/wake machinery (workers idle here; Group waiters too).
  std::mutex sleep_m_;
  std::condition_variable work_cv_;   // new work or parallelism change
  std::condition_variable done_cv_;   // a group task finished
  std::atomic<std::uint64_t> work_epoch_{0};
  bool stopping_ = false;
};

}  // namespace dakc::util
