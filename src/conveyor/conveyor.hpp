// Aggregation layer L0: a Conveyors-style buffered, routed, many-to-many
// packet streamer (Maley & DeVinney, IA^3 2019), reimplemented on the
// simulated fabric.
//
// A conveyor moves small *packets* (here: runs of 64-bit words, because
// k-mers with k <= 32 pack into one word) between PEs. Instead of sending
// each packet individually — which would pay the fabric's per-message
// latency tau every time — packets accumulate in per-next-hop *lanes* of
// ~40 KiB (Table III) and travel in bulk Puts when a lane fills.
//
// Three routing protocols trade buffer memory for hops (paper Table II):
//
//   protocol  virtual topology  lanes/PE       max hops
//   1D        all-connected     P              1
//   2D        2D HyperX grid    ~2 sqrt(P)     2   (fix column, then row)
//   3D        3D HyperX         ~3 cbrt(P)     3   (fix x, then y, then z)
//
// For 2D/3D, each packet carries a 32-bit routing header naming its final
// destination (the overhead motivating the paper's L2 aggregation layer);
// 1D packets are header-free. Intermediate PEs *relay*: a received packet
// whose destination is someone else is re-pushed toward its target.
//
// In the simulator a packet occupies a 64-bit descriptor word
// [dst:32 | len:16 | kind:8 | hops:8] plus its payload words; the modeled
// wire size uses the paper's header charges (4 B routed / 0 B direct) via
// the fabric's wire_bytes override, so measured communication volume
// matches the real system's.
//
// Usage (every PE, SPMD):
//   Conveyor conv(pe, cfg);
//   while (producing) {
//     conv.push(dst, words, n, kind);
//     conv.progress();                  // opportunistic relay/deliver
//     while (conv.pull(&pkt)) consume(pkt);
//   }
//   conv.finish();                      // collective: flush + quiesce
//   while (conv.pull(&pkt)) consume(pkt);
//
// finish() implements the paper's GLOBAL BARRIER between phase 1 and
// phase 2: it flushes every lane, then alternates draining with global
// sent-vs-delivered reductions until the stream is quiescent.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <vector>

#include "net/fabric.hpp"

namespace dakc::conveyor {

enum class Protocol : std::uint8_t { k1D, k2D, k3D };

const char* protocol_name(Protocol p);

/// Whether the conveyor runs its software reliability protocol
/// (sequence-numbered frames, cumulative acks, retransmit, dedup) on top
/// of best-effort delivery. kAuto arms it exactly when the fabric's fault
/// plane can corrupt the message stream, so fault-free runs stay
/// bit-identical to a build without the protocol.
enum class Reliability : std::uint8_t { kAuto, kOff, kOn };

struct ConveyorConfig {
  Protocol protocol = Protocol::k1D;
  /// Lane capacity in bytes (paper Table III: 40 KiB per L0 buffer).
  std::size_t lane_bytes = 40 * 1024;
  /// Modeled wire bytes of one packet's payload, by kind. Null (the
  /// default, and the golden-pinned behavior) charges the host
  /// representation: n * 8 bytes. Applications whose packets pack
  /// denser than their in-memory words — super-k-mer runs at 2
  /// bits/base — install a model here; it must depend only on the
  /// packet's own words so relays recompute the identical value.
  double (*wire_model)(std::uint8_t kind, const std::uint64_t* words,
                       std::size_t n) = nullptr;
  /// Modeled CPU ops charged per push/relay. Covers the runtime's
  /// per-packet software path (descriptor build, lane lookup, bounds
  /// checks) — tens of nanoseconds per packet in the real library, which
  /// is exactly the overhead the paper's L2 layer amortizes (Fig. 12).
  double push_ops = 40.0;
  // -- reliability protocol (Go-Back-N over best-effort puts) ------------
  Reliability reliability = Reliability::kAuto;
  /// Initial retransmission timeout; doubles per firing (exponential
  /// backoff) up to rto_max_seconds, and resets when an ack makes
  /// progress.
  double rto_seconds = 50e-6;
  double rto_max_seconds = 800e-6;
  /// In finish(), the number of consecutive quiescence rounds with no
  /// global delivery progress before unacked frames are force-retransmit
  /// (covers zero-cost runs, where clocks never advance and the RTO timer
  /// can therefore never fire).
  int stale_rounds = 2;
  /// Retransmit budget per link: after this many retransmission attempts
  /// with no ack progress, a peer the fabric reports permanently dead is
  /// *declared* dead (PeCounters::peers_declared_dead) and the link stops
  /// retransmitting — Go-Back-N must not retry a corpse forever. A peer
  /// that is still alive is never given up on (exactly-once delivery
  /// holds under arbitrary transient loss); the budget only bounds the
  /// goodbye to the permanently failed.
  int max_retransmits = 64;
  /// Stream id stamped into every reliable frame and ack header (24
  /// bits). Recovery protocols construct a fresh conveyor per epoch
  /// attempt with a new stream id so in-flight frames and acks from a
  /// condemned attempt are filtered out instead of corrupting the new
  /// attempt's sequence space. 0 (the default) keeps the wire format
  /// bit-identical to the pre-stream protocol.
  std::uint32_t stream_id = 0;
};

/// A delivered packet. `kind` is an application tag (DAKC uses it to mark
/// HEAVY vs NORMAL k-mer packets).
struct Packet {
  std::uint8_t kind = 0;
  std::vector<std::uint64_t> words;
};

/// Routing geometry for a protocol over `pes` ranks; exposed separately so
/// tests and the Table II bench can validate hop counts and lane counts
/// without running traffic.
class Router {
 public:
  Router(Protocol protocol, int pes);

  /// Next hop on the way from `self` to `dst` (== dst when adjacent,
  /// == self impossible; dst must differ from self).
  int next_hop(int self, int dst) const;
  /// Number of hops a packet from src to dst traverses.
  int hops(int src, int dst) const;
  /// Upper bound on distinct next-hops `self` can use (lane count).
  int max_lanes(int self) const;
  Protocol protocol() const { return protocol_; }

 private:
  Protocol protocol_;
  int pes_;
  // 2D grid
  int cols_ = 1, rows_ = 1;
  // 3D brick
  int ax_ = 1, ay_ = 1, az_ = 1;
};

class Conveyor {
 public:
  Conveyor(net::Pe& pe, ConveyorConfig config);
  ~Conveyor();

  Conveyor(const Conveyor&) = delete;
  Conveyor& operator=(const Conveyor&) = delete;

  /// Enqueue one packet of `n` words for PE `dst`. Packets must fit in a
  /// lane: n < lane capacity in words.
  void push(int dst, const std::uint64_t* words, std::size_t n,
            std::uint8_t kind = 0);
  /// Convenience single-word push (a bare k-mer).
  void push(int dst, std::uint64_t word, std::uint8_t kind = 0) {
    push(dst, &word, 1, kind);
  }

  /// Drain arrivals, relay foreign packets, queue local deliveries.
  void progress();

  /// Pop one delivered packet; false when none are available right now.
  /// The packet's words are copied out of the arrival slab into *out,
  /// reusing out->words' existing capacity — a pull loop recycling one
  /// Packet runs allocation-free in steady state.
  bool pull(Packet* out);
  /// True if delivered packets are queued locally (without polling the
  /// fabric). Quiescence callbacks use this to keep dispatching until the
  /// local queue is drained.
  bool has_ready() const { return !ready_.empty(); }

  /// Collective completion: flush lanes, then drive global quiescence.
  /// After it returns true, every pushed packet has been delivered
  /// somewhere (pull until empty). May be called once.
  ///
  /// `on_progress`, when given, runs once per quiescence round after
  /// arrivals are drained; it may pull() delivered packets and push() new
  /// ones (actor semantics: messages spawning messages). The stream is
  /// quiescent only when no handler produces further traffic.
  ///
  /// `abort`, when given, is polled once per quiescence round (right
  /// after the global reduction, so every PE polls an agreed state). A
  /// true return abandons quiescence immediately and finish() returns
  /// false: the stream is condemned — recovery protocols roll the epoch
  /// back and build a fresh conveyor with a new stream id. Without an
  /// abort callback finish() always returns true.
  bool finish(const std::function<void()>& on_progress = {},
              const std::function<bool()>& abort = {});

  // -- introspection -----------------------------------------------------
  /// Bytes of send-lane buffer memory this PE has allocated (Fig. 2).
  std::size_t lane_buffer_bytes() const;
  /// Number of allocated lanes.
  std::size_t lane_count() const { return active_lanes_.size(); }
  /// Packets this PE injected (as origin).
  std::uint64_t injected() const { return injected_; }
  /// Packets this PE injected with a given kind byte. Lets applications
  /// that multiplex packet kinds over one conveyor (DAKC's NORMAL /
  /// HEAVY / SUPER / MERGE frames) audit the traffic mix without
  /// counting at every call site.
  std::uint64_t injected_by_kind(std::uint8_t kind) const {
    return injected_by_kind_[kind];
  }
  /// Packets delivered to this PE (as final destination).
  std::uint64_t delivered() const { return delivered_; }
  /// Packets this PE relayed on behalf of others.
  std::uint64_t relayed() const { return relayed_; }
  /// True when the reliability protocol is armed on this conveyor.
  bool reliable() const { return reliable_; }
  /// Frames sent but not yet cumulatively acked (retransmit candidates).
  std::size_t unacked_frames() const;
  /// Distribution of hop counts over packets delivered here (index 0 =
  /// self-delivery, 1..3 = network hops).
  const std::uint64_t* hop_histogram() const { return hop_hist_; }

  const Router& router() const { return router_; }

 private:
  struct Lane {
    std::vector<std::uint64_t> words;
    double wire_bytes = 0.0;
  };

  /// Storage backing delivered-but-not-yet-pulled packets. An arrived
  /// message's payload is *moved* into a slab and its local packets are
  /// delivered as {slab, offset, len} views — no per-packet copy until
  /// pull() hands the words to the caller. Self-deliveries use a
  /// single-packet slab. `live` counts undelivered views; a slab whose
  /// last view is pulled returns to the free list (vector capacity
  /// retained for reuse).
  struct Slab {
    std::vector<std::uint64_t> words;
    std::uint32_t live = 0;
    std::uint32_t next_free = kNoSlab;
  };
  struct ReadyPacket {
    std::uint32_t slab;
    std::uint32_t offset;
    std::uint32_t len;
    std::uint8_t kind;
  };
  static constexpr std::uint32_t kNoSlab = ~0u;

  /// Ack control messages travel on their own tag so they never mix with
  /// data frames (collective tags are positive, data is tag 0).
  static constexpr int kAckTag = -2;

  /// One sent-but-unacked frame, retained for Go-Back-N retransmission.
  struct Frame {
    std::uint32_t seq;
    std::vector<std::uint64_t> words;
    double wire_bytes;
  };
  struct SendLink {
    std::uint32_t next_seq = 0;
    std::deque<Frame> unacked;
    des::SimTime last_send = 0.0;
    double rto = 0.0;
    /// Retransmission attempts since the last ack progress.
    int attempts = 0;
    /// Peer declared permanently dead: retransmission stopped for good.
    bool dead = false;
  };
  struct RecvLink {
    std::uint32_t expected = 0;
    bool ack_dirty = false;
  };

  void route(int dst, const std::uint64_t* words, std::size_t n,
             std::uint8_t kind, std::uint8_t hops);
  void flush_lane(Lane& lane, int next_hop);
  void flush_all();
  void deliver_local(std::uint8_t kind, const std::uint64_t* words,
                     std::size_t n, std::uint8_t hops);
  void unpack_message(net::Message& msg, std::size_t offset = 0);
  // Reliability protocol internals (no-ops unless reliable_):
  void handle_frame(net::Message& msg);
  void handle_ack(const net::Message& msg);
  void send_pending_acks();
  /// Retransmit every unacked frame on links whose RTO expired (or on all
  /// links with backlog when `force`), doubling the link's RTO each time.
  void maybe_retransmit(bool force);
  /// Pop a slab off the free list (or grow slabs_); the slab's words
  /// vector keeps whatever capacity its last use grew.
  std::uint32_t acquire_slab();
  void release_slab(std::uint32_t id);

  net::Pe& pe_;
  ConveyorConfig config_;
  Router router_;
  double header_wire_bytes_;  // 4.0 for routed protocols, 0.0 for 1D
  std::size_t lane_capacity_words_;
  /// Lazy per-next-hop lane table: a dense 4-byte index (O(1) lookup on
  /// the push path) into compact Lane slots allocated on a next-hop's
  /// *first* packet. Host memory for lanes therefore scales with the
  /// next-hops this PE actually uses (<= Router::max_lanes, ~2 sqrt(P)
  /// for 2D) instead of P — across P PEs that is the difference between
  /// O(P^1.5) and O(P^2) total. active_lanes_ stays sorted so flush_all
  /// walks lanes in the deterministic ascending next-hop order the
  /// quiescence protocol relies on.
  static constexpr std::uint32_t kNoLane = ~0u;
  std::vector<std::uint32_t> lane_index_;
  std::vector<Lane> lane_slots_;
  std::vector<int> active_lanes_;
  /// Lanes currently holding unflushed words. flush_all() — called every
  /// quiescence round — returns immediately when zero instead of
  /// rescanning every activated lane.
  std::size_t nonempty_lanes_ = 0;
  /// Live (not declared-dead) send links with unacked backlog; gates
  /// maybe_retransmit's per-round link scan the same way.
  std::size_t backlogged_links_ = 0;
  /// Receive links owing an ack; gates send_pending_acks's scan.
  std::size_t dirty_acks_ = 0;
  /// Free list of lane-sized buffers: released slabs donate lane-capacity
  /// vectors here, and flush_lane takes them so a flushed lane regains a
  /// full-capacity buffer instead of re-growing from empty.
  std::vector<std::vector<std::uint64_t>> lane_pool_;
  std::vector<Slab> slabs_;
  std::uint32_t free_slab_ = kNoSlab;
  std::deque<ReadyPacket> ready_;
  std::uint64_t injected_ = 0;
  std::uint64_t injected_by_kind_[256] = {};
  std::uint64_t delivered_ = 0;
  std::uint64_t relayed_ = 0;
  std::uint64_t hop_hist_[4] = {0, 0, 0, 0};
  bool finished_ = false;
  bool endgame_ = false;
  /// Armed reliability protocol (resolved from config.reliability at
  /// construction; see Reliability).
  bool reliable_ = false;
  /// Permanent kills armed on the fabric (cached at construction):
  /// gates route()'s per-packet dead-relay check off the hot path.
  bool peer_death_possible_ = false;
  /// Per-peer protocol state, keyed by next-hop / source PE. Ordered maps
  /// keep ack and retransmit iteration deterministic.
  std::map<int, SendLink> send_links_;
  std::map<int, RecvLink> recv_links_;
};

}  // namespace dakc::conveyor
