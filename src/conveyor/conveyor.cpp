#include "conveyor/conveyor.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"
#include "util/stack_pool.hpp"

namespace dakc::conveyor {

namespace {

// Descriptor word layout: [dst:32 | len:16 | kind:8 | hops:8].
constexpr std::uint64_t make_descriptor(int dst, std::size_t len,
                                        std::uint8_t kind,
                                        std::uint8_t hops) {
  return static_cast<std::uint64_t>(static_cast<std::uint32_t>(dst)) |
         (static_cast<std::uint64_t>(len) << 32) |
         (static_cast<std::uint64_t>(kind) << 48) |
         (static_cast<std::uint64_t>(hops) << 56);
}
constexpr int desc_dst(std::uint64_t d) {
  return static_cast<int>(d & 0xFFFFFFFFu);
}
constexpr std::size_t desc_len(std::uint64_t d) {
  return static_cast<std::size_t>((d >> 32) & 0xFFFFu);
}
constexpr std::uint8_t desc_kind(std::uint64_t d) {
  return static_cast<std::uint8_t>((d >> 48) & 0xFFu);
}
constexpr std::uint8_t desc_hops(std::uint64_t d) {
  return static_cast<std::uint8_t>((d >> 56) & 0xFFu);
}

int int_ceil_div(int a, int b) { return (a + b - 1) / b; }

// Reliable-frame header word (slot 0 of a lane buffer when the protocol
// is armed): [magic 0xC5 : 8 | stream : 24 | seq : 32]. Acks reuse the
// stream/seq layout without the magic byte. Stream 0 (the default)
// reproduces the original reserved-zero header bit-for-bit.
constexpr std::uint64_t kFrameMagic = 0xC5ULL << 56;
constexpr std::uint64_t make_frame_header(std::uint32_t stream,
                                          std::uint32_t seq) {
  return kFrameMagic |
         (static_cast<std::uint64_t>(stream & 0xFFFFFFu) << 32) | seq;
}
constexpr bool frame_header_ok(std::uint64_t w) {
  return (w >> 56) == 0xC5ULL;
}
constexpr std::uint32_t frame_stream(std::uint64_t w) {
  return static_cast<std::uint32_t>((w >> 32) & 0xFFFFFFu);
}
constexpr std::uint32_t frame_seq(std::uint64_t w) {
  return static_cast<std::uint32_t>(w & 0xFFFFFFFFu);
}

/// seq_a strictly before seq_b in modular 32-bit sequence space.
constexpr bool seq_before(std::uint32_t a, std::uint32_t b) {
  return static_cast<std::int32_t>(a - b) < 0;
}

}  // namespace

const char* protocol_name(Protocol p) {
  switch (p) {
    case Protocol::k1D: return "1D";
    case Protocol::k2D: return "2D";
    case Protocol::k3D: return "3D";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// Router
// ---------------------------------------------------------------------------

Router::Router(Protocol protocol, int pes) : protocol_(protocol), pes_(pes) {
  DAKC_CHECK(pes >= 1);
  if (protocol_ == Protocol::k2D) {
    cols_ = static_cast<int>(std::ceil(std::sqrt(static_cast<double>(pes))));
    cols_ = std::max(cols_, 1);
    rows_ = int_ceil_div(pes, cols_);
  } else if (protocol_ == Protocol::k3D) {
    ax_ = static_cast<int>(std::ceil(std::cbrt(static_cast<double>(pes))));
    ax_ = std::max(ax_, 1);
    ay_ = static_cast<int>(
        std::ceil(std::sqrt(static_cast<double>(int_ceil_div(pes, ax_)))));
    ay_ = std::max(ay_, 1);
    az_ = int_ceil_div(pes, ax_ * ay_);
  }
}

int Router::next_hop(int self, int dst) const {
  DAKC_ASSERT(self != dst);
  DAKC_ASSERT(dst >= 0 && dst < pes_);
  switch (protocol_) {
    case Protocol::k1D:
      return dst;
    case Protocol::k2D: {
      const int cs = self % cols_, rs = self / cols_;
      const int cd = dst % cols_, rd = dst / cols_;
      if (cs == cd) return dst;  // one hop down the column
      const int via = rs * cols_ + cd;  // fix column within my row
      if (via < pes_) return via;
      // My row lacks that column (ragged last row): fix the row first.
      const int alt = rd * cols_ + cs;
      if (alt < pes_ && alt != self) return alt;
      return dst;  // degenerate geometry: go direct
    }
    case Protocol::k3D: {
      const int xs = self % ax_, ys = (self / ax_) % ay_,
                zs = self / (ax_ * ay_);
      const int xd = dst % ax_, yd = (dst / ax_) % ay_,
                zd = dst / (ax_ * ay_);
      auto idx = [&](int x, int y, int z) { return x + ax_ * (y + ay_ * z); };
      if (xs != xd) {
        const int via = idx(xd, ys, zs);
        if (via < pes_) return via;
        return dst;
      }
      if (ys != yd) {
        const int via = idx(xs, yd, zs);
        if (via < pes_) return via;
        return dst;
      }
      (void)zd;
      return dst;  // only z differs: one hop
    }
  }
  return dst;
}

int Router::hops(int src, int dst) const {
  int h = 0;
  int cur = src;
  while (cur != dst) {
    cur = next_hop(cur, dst);
    ++h;
    DAKC_CHECK_MSG(h <= 4, "routing cycle detected");
  }
  return h;
}

int Router::max_lanes(int self) const {
  (void)self;
  switch (protocol_) {
    case Protocol::k1D:
      return std::max(pes_ - 1, 1);
    case Protocol::k2D:
      return std::max((cols_ - 1) + (rows_ - 1), 1);
    case Protocol::k3D:
      return std::max((ax_ - 1) + (ay_ - 1) + (az_ - 1), 1);
  }
  return pes_;
}

// ---------------------------------------------------------------------------
// Conveyor
// ---------------------------------------------------------------------------

Conveyor::Conveyor(net::Pe& pe, ConveyorConfig config)
    : pe_(pe),
      config_(config),
      router_(config.protocol, pe.size()),
      header_wire_bytes_(config.protocol == Protocol::k1D ? 0.0 : 4.0),
      lane_capacity_words_(config.lane_bytes / 8) {
  DAKC_CHECK_MSG(config_.lane_bytes > 0,
                 "ConveyorConfig.lane_bytes must be positive");
  DAKC_CHECK_MSG(lane_capacity_words_ >= 16,
                 "lane_bytes too small to hold packets");
  DAKC_CHECK_MSG(config_.push_ops >= 0.0,
                 "ConveyorConfig.push_ops must be non-negative");
  DAKC_CHECK_MSG(config_.rto_seconds > 0.0 &&
                     config_.rto_max_seconds >= config_.rto_seconds,
                 "ConveyorConfig retransmit timeouts must satisfy "
                 "0 < rto_seconds <= rto_max_seconds");
  DAKC_CHECK_MSG(config_.stale_rounds >= 1,
                 "ConveyorConfig.stale_rounds must be >= 1");
  DAKC_CHECK_MSG(config_.max_retransmits >= 1,
                 "ConveyorConfig.max_retransmits must be >= 1");
  DAKC_CHECK_MSG(config_.stream_id < (1u << 24),
                 "ConveyorConfig.stream_id must fit in 24 bits");
  reliable_ =
      config_.reliability == Reliability::kOn ||
      (config_.reliability == Reliability::kAuto &&
       pe_.fault_config().any_message_faults() && pe_.faults_enabled());
  // Cached so route()'s per-packet corpse check costs one member-bool
  // branch instead of an out-of-line Pe::alive() call when kills are off.
  peer_death_possible_ =
      pe_.faults_enabled() && pe_.fault_config().kill_rate > 0.0;
  // Dense next-hop index only; Lane slots materialize on first use.
  lane_index_.assign(static_cast<std::size_t>(pe.size()), kNoLane);
  lane_slots_.reserve(static_cast<std::size_t>(router_.max_lanes(pe.rank())));
  util::host_mem_note_alloc(util::HostMemClass::kBuffer,
                            lane_index_.size() * sizeof(std::uint32_t));
}

Conveyor::~Conveyor() {
  pe_.account_free(static_cast<double>(lane_buffer_bytes()));
  for (auto& [dst, link] : send_links_)
    for (const Frame& fr : link.unacked)
      pe_.account_free(static_cast<double>(fr.words.size()) * 8.0);
  util::host_mem_note_free(
      util::HostMemClass::kBuffer,
      lane_index_.size() * sizeof(std::uint32_t) +
          lane_slots_.size() * config_.lane_bytes);
}

std::size_t Conveyor::unacked_frames() const {
  std::size_t n = 0;
  for (const auto& [dst, link] : send_links_) n += link.unacked.size();
  return n;
}

std::size_t Conveyor::lane_buffer_bytes() const {
  return active_lanes_.size() * config_.lane_bytes;
}

std::uint32_t Conveyor::acquire_slab() {
  if (free_slab_ != kNoSlab) {
    const std::uint32_t id = free_slab_;
    Slab& s = slabs_[id];
    free_slab_ = s.next_free;
    s.next_free = kNoSlab;
    return id;
  }
  const auto id = static_cast<std::uint32_t>(slabs_.size());
  slabs_.emplace_back();
  return id;
}

void Conveyor::release_slab(std::uint32_t id) {
  Slab& s = slabs_[id];
  // Donate lane-capacity vectors to the flush pool (bounded by one spare
  // per potential next-hop plus in-flight slack); keep smaller ones on the
  // slab for the next self-delivery.
  if (s.words.capacity() * 8 >= config_.lane_bytes &&
      lane_pool_.size() < lane_slots_.size() + 8) {
    s.words.clear();
    lane_pool_.push_back(std::move(s.words));
  }
  s.next_free = free_slab_;
  free_slab_ = id;
}

void Conveyor::push(int dst, const std::uint64_t* words, std::size_t n,
                    std::uint8_t kind) {
  DAKC_CHECK_MSG(!finished_, "push() after finish() completed");
  DAKC_CHECK(n >= 1 && n < lane_capacity_words_);
  ++injected_;
  ++injected_by_kind_[kind];
  pe_.charge_compute_ops(config_.push_ops);
  pe_.charge_mem_bytes(static_cast<double>(n) * 8.0);
  if (dst == pe_.rank()) {
    deliver_local(kind, words, n, 0);
    return;
  }
  route(dst, words, n, kind, 0);
}

void Conveyor::route(int dst, const std::uint64_t* words, std::size_t n,
                     std::uint8_t kind, std::uint8_t hops) {
  int next = router_.next_hop(pe_.rank(), dst);
  // 2D/3D relays must not route through a corpse: a permanently dead
  // intermediate would swallow the packet even though the final
  // destination is alive. Go direct instead.
  if (peer_death_possible_ && next != dst && !pe_.alive(next)) next = dst;
  std::uint32_t li = lane_index_[static_cast<std::size_t>(next)];
  if (li == kNoLane) {
    li = static_cast<std::uint32_t>(lane_slots_.size());
    lane_index_[static_cast<std::size_t>(next)] = li;
    lane_slots_.emplace_back();
    // Keep the activation list sorted so flush_all walks lanes in
    // ascending next-hop order (the deterministic order the old ordered
    // map gave); activations are rare (bounded by Router::max_lanes).
    active_lanes_.insert(
        std::lower_bound(active_lanes_.begin(), active_lanes_.end(), next),
        next);
    // Account the lane at full capacity (the real library allocates it
    // up front: Table III / Fig. 2) but let the host vector grow lazily
    // so high-PE simulations stay affordable.
    pe_.account_alloc(static_cast<double>(config_.lane_bytes));
    util::host_mem_note_alloc(util::HostMemClass::kBuffer,
                              config_.lane_bytes);
  }
  Lane& lane = lane_slots_[li];
  if (lane.words.empty()) ++nonempty_lanes_;
  // Armed reliability reserves slot 0 of every frame for the sequence
  // header, filled in at flush time.
  if (reliable_ && lane.words.empty()) lane.words.push_back(0);
  lane.words.push_back(make_descriptor(dst, n, kind,
                                       static_cast<std::uint8_t>(hops + 1)));
  lane.words.insert(lane.words.end(), words, words + n);
  lane.wire_bytes += header_wire_bytes_ +
                     (config_.wire_model != nullptr
                          ? config_.wire_model(kind, words, n)
                          : static_cast<double>(n) * 8.0);
  if (lane.words.size() + 1 >= lane_capacity_words_) flush_lane(lane, next);
}

void Conveyor::flush_lane(Lane& lane, int next_hop) {
  if (lane.words.empty()) return;
  --nonempty_lanes_;
  double wire = lane.wire_bytes;
  // Swap in a pooled buffer: the lane keeps its grown capacity on the
  // recycled vector instead of re-growing from zero after every flush.
  std::vector<std::uint64_t> out;
  if (!lane_pool_.empty()) {
    out = std::move(lane_pool_.back());
    lane_pool_.pop_back();
  }
  out.swap(lane.words);
  lane.wire_bytes = 0.0;
  if (!reliable_) {
    pe_.put(next_hop, std::move(out), net::Pe::kAppTag, wire);
    return;
  }
  // Go-Back-N sender: stamp the frame with this link's next sequence
  // number, retain a copy until the cumulative ack covers it, and ship it
  // best-effort (the fault plane may drop or duplicate it — recovery is
  // our job now, not the transport's).
  SendLink& link = send_links_[next_hop];
  const std::uint32_t seq = link.next_seq++;
  out[0] = make_frame_header(config_.stream_id, seq);
  wire += 8.0;  // sequence header rides the wire
  pe_.account_alloc(static_cast<double>(out.size()) * 8.0);
  if (link.unacked.empty()) {
    link.rto = config_.rto_seconds;
    if (!link.dead) ++backlogged_links_;
  }
  link.unacked.push_back({seq, out, wire});
  pe_.put(next_hop, std::move(out), net::Pe::kAppTag, wire,
          net::Delivery::kBestEffort);
  link.last_send = pe_.now();
}

void Conveyor::flush_all() {
  // Counted non-quiescence: every finish() round calls this, and in the
  // endgame almost every round finds nothing to flush — skip the
  // O(active lanes) walk entirely then.
  if (nonempty_lanes_ == 0) return;
  for (int next : active_lanes_)
    flush_lane(lane_slots_[lane_index_[static_cast<std::size_t>(next)]],
               next);
}

void Conveyor::deliver_local(std::uint8_t kind, const std::uint64_t* words,
                             std::size_t n, std::uint8_t hops) {
  // Self-delivery: copy into a single-packet slab (its vector keeps its
  // capacity across free-list reuse, so steady-state self traffic does
  // not allocate).
  const std::uint32_t id = acquire_slab();
  Slab& slab = slabs_[id];
  slab.words.assign(words, words + n);
  slab.live = 1;
  ready_.push_back({id, 0, static_cast<std::uint32_t>(n), kind});
  ++delivered_;
  ++hop_hist_[std::min<std::uint8_t>(hops, 3)];
}

void Conveyor::unpack_message(net::Message& msg, std::size_t offset) {
  // Move the payload into a slab and deliver local packets as views into
  // it — the only per-word copy on the delivery path happens in pull(),
  // straight into the caller's buffer. `offset` skips the reliability
  // frame header when the protocol is armed.
  const std::uint32_t id = acquire_slab();
  Slab& slab = slabs_[id];
  slab.words = std::move(msg.payload);
  const auto& w = slab.words;
  std::size_t i = offset;
  std::uint32_t local = 0;
  while (i < w.size()) {
    const std::uint64_t desc = w[i++];
    const std::size_t n = desc_len(desc);
    DAKC_CHECK_MSG(i + n <= w.size(), "corrupt conveyor buffer");
    const int dst = desc_dst(desc);
    if (dst == pe_.rank()) {
      ready_.push_back({id, static_cast<std::uint32_t>(i),
                        static_cast<std::uint32_t>(n), desc_kind(desc)});
      ++local;
      ++delivered_;
      ++hop_hist_[std::min<std::uint8_t>(desc_hops(desc), 3)];
    } else {
      ++relayed_;
      pe_.charge_compute_ops(config_.push_ops);
      pe_.charge_mem_bytes(static_cast<double>(n) * 8.0);
      route(dst, &w[i], n, desc_kind(desc), desc_hops(desc));
    }
    i += n;
  }
  slab.live = local;
  if (local == 0) release_slab(id);
}

void Conveyor::handle_frame(net::Message& msg) {
  DAKC_CHECK_MSG(!msg.payload.empty() && frame_header_ok(msg.payload[0]),
                 "reliable conveyor received an unframed message");
  // A frame from another stream is flotsam from a condemned epoch attempt
  // (recovery rolled it back and rebuilt the conveyor under a new stream
  // id): drop it without acking — an ack would carry OUR expected seq and
  // confuse nobody useful, and the stale sender is gone anyway.
  if (frame_stream(msg.payload[0]) != (config_.stream_id & 0xFFFFFFu)) {
    ++pe_.counters().dedup_discards;
    return;
  }
  RecvLink& link = recv_links_[msg.src];
  const std::uint32_t seq = frame_seq(msg.payload[0]);
  // Re-ack on every frame, accepted or not: a discarded retransmission
  // means our previous ack was lost, and only a fresh ack stops the
  // sender's backoff loop.
  if (!link.ack_dirty) {
    link.ack_dirty = true;
    ++dirty_acks_;
  }
  if (seq != link.expected) {
    // Go-Back-N receiver: anything but the next expected frame is a
    // duplicate (retransmit raced the ack, or the fault plane duplicated
    // it) or out of order; discard it — the sender will resend in order.
    ++pe_.counters().dedup_discards;
    return;
  }
  ++link.expected;
  unpack_message(msg, /*offset=*/1);
}

void Conveyor::handle_ack(const net::Message& msg) {
  DAKC_CHECK_MSG(msg.payload.size() == 1, "malformed conveyor ack");
  // Acks carry [stream:24 | expected:32] like frames (sans magic); a
  // stale ack from a condemned stream must not free this stream's frames.
  if (frame_stream(msg.payload[0]) != (config_.stream_id & 0xFFFFFFu))
    return;
  SendLink& link = send_links_[msg.src];
  const auto ack = static_cast<std::uint32_t>(msg.payload[0] & 0xFFFFFFFFu);
  const bool had_backlog = !link.unacked.empty();
  // Cumulative: everything strictly before `ack` is delivered.
  while (!link.unacked.empty() && seq_before(link.unacked.front().seq, ack)) {
    pe_.account_free(
        static_cast<double>(link.unacked.front().words.size()) * 8.0);
    link.unacked.pop_front();
    link.rto = config_.rto_seconds;  // forward progress resets backoff
    link.attempts = 0;
  }
  if (had_backlog && link.unacked.empty() && !link.dead) --backlogged_links_;
}

void Conveyor::send_pending_acks() {
  if (dirty_acks_ == 0) return;
  for (auto& [src, link] : recv_links_) {
    if (!link.ack_dirty) continue;
    link.ack_dirty = false;
    --dirty_acks_;
    const std::uint64_t word =
        (static_cast<std::uint64_t>(config_.stream_id & 0xFFFFFFu) << 32) |
        link.expected;
    pe_.put(src, {word}, kAckTag,
            /*wire_bytes=*/8.0, net::Delivery::kBestEffort);
    ++pe_.counters().acks_sent;
  }
}

void Conveyor::maybe_retransmit(bool force) {
  if (backlogged_links_ == 0) return;
  for (auto& [dst, link] : send_links_) {
    if (link.unacked.empty() || link.dead) continue;
    if (!force && pe_.now() < link.last_send + link.rto) continue;
    if (link.attempts >= config_.max_retransmits && !pe_.alive(dst)) {
      // Retransmit budget exhausted and the fabric confirms the peer is
      // permanently gone: declare it dead and stop resending — the ack
      // will never come. A live peer is never condemned, whatever the
      // budget says (exactly-once must survive arbitrary transient loss);
      // its frames simply keep retrying at the capped rto_max interval.
      link.dead = true;
      --backlogged_links_;
      ++pe_.counters().peers_declared_dead;
      continue;
    }
    for (const Frame& fr : link.unacked) {
      pe_.put(dst, fr.words, net::Pe::kAppTag, fr.wire_bytes,
              net::Delivery::kBestEffort);
      ++pe_.counters().retransmits;
    }
    ++link.attempts;
    link.last_send = pe_.now();
    link.rto = std::min(link.rto * 2.0, config_.rto_max_seconds);
  }
}

void Conveyor::progress() {
  net::Message msg;
  if (!reliable_) {
    while (pe_.try_recv(&msg)) unpack_message(msg);
    return;
  }
  while (pe_.try_recv(&msg, kAckTag)) handle_ack(msg);
  while (pe_.try_recv(&msg)) handle_frame(msg);
  send_pending_acks();
  maybe_retransmit(/*force=*/false);
}

bool Conveyor::pull(Packet* out) {
  if (ready_.empty()) progress();
  if (ready_.empty()) return false;
  const ReadyPacket rp = ready_.front();
  ready_.pop_front();
  Slab& slab = slabs_[rp.slab];
  out->kind = rp.kind;
  out->words.assign(slab.words.data() + rp.offset,
                    slab.words.data() + rp.offset + rp.len);
  if (--slab.live == 0) release_slab(rp.slab);
  return true;
}

bool Conveyor::finish(const std::function<void()>& on_progress,
                      const std::function<bool()>& abort) {
  DAKC_CHECK_MSG(!finished_ && !endgame_, "finish() called twice");
  endgame_ = true;
  flush_all();
  // Align the endgame: once every PE has flushed, most in-flight traffic
  // is older than the barrier release, so the first counting round below
  // usually confirms quiescence immediately (1D never needs a second).
  pe_.barrier();
  if (abort && abort()) return false;
  // Retransmit-aware quiescence: under loss, sent-vs-delivered can sit
  // unequal with nothing in flight (the frames are gone). Track global
  // delivery progress across rounds; when it stalls for stale_rounds
  // consecutive reductions, force-retransmit all unacked frames — RTO
  // timers alone cannot be trusted here because zero-cost clocks never
  // advance.
  std::uint64_t last_delivered = ~0ull;
  int stale = 0;
  while (true) {
    progress();
    if (on_progress) on_progress();  // may push() follow-up packets
    flush_all();  // relays and handler pushes may have refilled lanes
    const auto [global_injected, global_delivered] =
        pe_.allreduce_sum2(injected_, delivered_);
    // A PE death removes its injected/delivered tallies from the
    // reduction, so the invariant (and the termination arithmetic) only
    // hold while nobody died; abort-capable callers poll right after the
    // reduction — every PE released by it sees the same death state — and
    // condemn the stream before the arithmetic can mislead anyone.
    if (abort && abort()) return false;
    DAKC_ASSERT(global_delivered <= global_injected);
    if (global_injected == global_delivered) break;
    if (reliable_) {
      if (global_delivered == last_delivered) {
        if (++stale >= config_.stale_rounds) {
          maybe_retransmit(/*force=*/true);
          send_pending_acks();
          stale = 0;
        }
      } else {
        stale = 0;
        last_delivered = global_delivered;
      }
    }
    // Packets are still in flight; fast-forward to our next arrival (if
    // any) so the next progress() sees it. PEs with nothing inbound just
    // ride the reduction rounds, whose cost advances their clocks.
    des::SimTime when;
    if (pe_.next_arrival(&when) && when > pe_.now()) pe_.idle_until(when);
  }
  finished_ = true;
  return true;
}

}  // namespace dakc::conveyor
